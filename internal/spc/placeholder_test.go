package spc

import (
	"testing"

	"bcq/internal/value"
)

func TestParsePlaceholders(t *testing.T) {
	q := MustParse(`select photo_id from in_album where album_id = ? and photo_id = 7`, socialCatalog())
	if len(q.Placeholders) != 1 || q.Placeholders[0] != (AttrRef{Atom: 0, Attr: "album_id"}) {
		t.Fatalf("placeholders = %v", q.Placeholders)
	}
	if q.NumSel() != 2 {
		t.Errorf("#-sel = %d (placeholders count as selection atoms)", q.NumSel())
	}
}

func TestPlaceholderStringRoundTrip(t *testing.T) {
	cat := socialCatalog()
	q := MustParse(`select t1.photo_id from in_album as t1 where t1.album_id = ?`, cat)
	q2, err := Parse(q.String(), cat)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", q.String(), err)
	}
	if len(q2.Placeholders) != 1 {
		t.Errorf("placeholders lost in round trip: %s", q2)
	}
}

func TestPlaceholderNotInXBNorXC(t *testing.T) {
	cat := socialCatalog()
	q := MustParse(`select t1.photo_id from in_album as t1 where t1.album_id = ?`, cat)
	c, err := NewClosure(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	id := c.MustClass(AttrRef{Atom: 0, Attr: "album_id"})
	if c.XB().Has(id) {
		t.Error("placeholder class in X_B")
	}
	if c.XC().Has(id) {
		t.Error("placeholder class in X_C")
	}
	if !c.Params().Has(id) {
		t.Error("placeholder not a parameter")
	}
	// It is a parameter of its atom.
	found := false
	for _, a := range c.AtomParamAttrs(0) {
		if a == "album_id" {
			found = true
		}
	}
	if !found {
		t.Error("placeholder missing from X^i_Q")
	}
}

func TestInstantiateConsumesPlaceholder(t *testing.T) {
	cat := socialCatalog()
	q := MustParse(`select t1.photo_id from in_album as t1 where t1.album_id = ?`, cat)
	inst := q.Instantiate(map[AttrRef]value.Value{
		{Atom: 0, Attr: "album_id"}: value.Int(9),
	})
	if len(inst.Placeholders) != 0 {
		t.Errorf("bound placeholder not consumed: %v", inst.Placeholders)
	}
	if len(inst.EqConsts) != 1 || inst.EqConsts[0].C != value.Int(9) {
		t.Errorf("constant not added: %v", inst.EqConsts)
	}
	// The original is untouched.
	if len(q.Placeholders) != 1 {
		t.Error("Instantiate mutated the receiver")
	}
	// Partial instantiation keeps the unbound slots.
	q2 := MustParse(`select t1.photo_id from in_album as t1, friends as t2
		where t1.album_id = ? and t2.user_id = ?`, cat)
	inst2 := q2.Instantiate(map[AttrRef]value.Value{
		{Atom: 0, Attr: "album_id"}: value.Int(1),
	})
	if len(inst2.Placeholders) != 1 || inst2.Placeholders[0].Attr != "user_id" {
		t.Errorf("partial instantiation placeholders = %v", inst2.Placeholders)
	}
}

func TestClosureWithPlaceholderOnJoinedClass(t *testing.T) {
	// A placeholder on an attribute that also participates in a join: the
	// class is shared; instantiating the slot pins the whole class.
	cat := socialCatalog()
	q := MustParse(`select t3.photo_id from friends as t2, tagging as t3
		where t2.user_id = ? and t3.taggee_id = t2.user_id`, cat)
	c, err := NewClosure(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(AttrRef{Atom: 0, Attr: "user_id"}, AttrRef{Atom: 1, Attr: "taggee_id"}) {
		t.Fatal("join not in closure")
	}
	inst := q.Instantiate(map[AttrRef]value.Value{{Atom: 0, Attr: "user_id"}: value.Str("u0")})
	c2, err := NewClosure(inst, cat)
	if err != nil {
		t.Fatal(err)
	}
	id := c2.MustClass(AttrRef{Atom: 1, Attr: "taggee_id"})
	if v, ok := c2.ConstOf(id); !ok || v != value.Str("u0") {
		t.Errorf("constant did not propagate through the class: %v %v", v, ok)
	}
}
