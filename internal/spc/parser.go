package spc

import (
	"fmt"
	"strings"

	"bcq/internal/schema"
	"bcq/internal/value"
)

// Parse parses the SQL-ish surface syntax for SPC queries and validates the
// result against the catalog:
//
//	[query NAME:]
//	select alias.attr [as name], ... | select exists
//	from rel [as alias], ...
//	[where ref = ref and ref = literal and ...]
//
// Only equality predicates joined by "and" are allowed — exactly the SPC
// fragment. References may be written "alias.attr" or, when unambiguous
// across the from-list, as a bare "attr". Literals are integers,
// single-quoted strings, or null (rejected: x = null never holds).
// Keywords are case-insensitive; identifiers are case-sensitive.
func Parse(src string, cat *schema.Catalog) (*Query, error) {
	p := &parser{lex: newLexer(src), cat: cat}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(cat); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for tests and static examples.
func MustParse(src string, cat *schema.Catalog) *Query {
	q, err := Parse(src, cat)
	if err != nil {
		panic(err)
	}
	return q
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokDot
	tokComma
	tokEq
	tokColon
	tokQuestion
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '.':
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case c == ':':
		l.pos++
		return token{kind: tokColon, text: ":", pos: start}, nil
	case c == '?':
		l.pos++
		return token{kind: tokQuestion, text: "?", pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("spc: unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokString, text: b.String(), pos: start}, nil
	case c == '-' || (c >= '0' && c <= '9'):
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		if l.pos == start+1 && c == '-' {
			return token{}, fmt.Errorf("spc: stray '-' at offset %d", start)
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	default:
		return token{}, fmt.Errorf("spc: unexpected character %q at offset %d", string(c), start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

type parser struct {
	lex    *lexer
	cat    *schema.Catalog
	tok    token
	peeked bool
}

func (p *parser) next() (token, error) {
	if p.peeked {
		p.peeked = false
		return p.tok, nil
	}
	return p.lex.next()
}

func (p *parser) peek() (token, error) {
	if !p.peeked {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.tok = t
		p.peeked = true
	}
	return p.tok, nil
}

func (p *parser) expectKeyword(kw string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("spc: expected %q, got %s", kw, t)
	}
	return nil
}

func (p *parser) atKeyword(kw string) (bool, error) {
	t, err := p.peek()
	if err != nil {
		return false, err
	}
	return t.kind == tokIdent && strings.EqualFold(t.text, kw), nil
}

// rawRef is an attribute reference before alias resolution.
type rawRef struct {
	alias string // empty for bare references
	attr  string
	pos   int
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}

	if isQuery, err := p.atKeyword("query"); err != nil {
		return nil, err
	} else if isQuery {
		if _, err := p.next(); err != nil {
			return nil, err
		}
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.kind != tokIdent {
			return nil, fmt.Errorf("spc: expected query name, got %s", t)
		}
		q.Name = t.text
		t, err = p.next()
		if err != nil {
			return nil, err
		}
		if t.kind != tokColon {
			return nil, fmt.Errorf("spc: expected ':' after query name, got %s", t)
		}
	}

	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}

	// Projection list, or "exists" for Boolean queries.
	var rawOut []struct {
		ref rawRef
		as  string
	}
	if isExists, err := p.atKeyword("exists"); err != nil {
		return nil, err
	} else if isExists {
		if _, err := p.next(); err != nil {
			return nil, err
		}
	} else {
		for {
			ref, err := p.parseRef()
			if err != nil {
				return nil, err
			}
			as := ""
			if isAs, err := p.atKeyword("as"); err != nil {
				return nil, err
			} else if isAs {
				if _, err := p.next(); err != nil {
					return nil, err
				}
				t, err := p.next()
				if err != nil {
					return nil, err
				}
				if t.kind != tokIdent {
					return nil, fmt.Errorf("spc: expected output name after 'as', got %s", t)
				}
				as = t.text
			}
			rawOut = append(rawOut, struct {
				ref rawRef
				as  string
			}{ref, as})
			t, err := p.peek()
			if err != nil {
				return nil, err
			}
			if t.kind != tokComma {
				break
			}
			if _, err := p.next(); err != nil {
				return nil, err
			}
		}
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.kind != tokIdent {
			return nil, fmt.Errorf("spc: expected relation name, got %s", t)
		}
		atom := Atom{Rel: t.text}
		if isAs, err := p.atKeyword("as"); err != nil {
			return nil, err
		} else if isAs {
			if _, err := p.next(); err != nil {
				return nil, err
			}
			t, err := p.next()
			if err != nil {
				return nil, err
			}
			if t.kind != tokIdent {
				return nil, fmt.Errorf("spc: expected alias after 'as', got %s", t)
			}
			atom.Alias = t.text
		}
		q.Atoms = append(q.Atoms, atom)
		t2, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t2.kind != tokComma {
			break
		}
		if _, err := p.next(); err != nil {
			return nil, err
		}
	}

	// Optional where-clause: equalities joined by "and".
	type rawCond struct {
		l      rawRef
		isRef  bool
		isSlot bool
		r      rawRef
		c      value.Value
	}
	var rawConds []rawCond
	if isWhere, err := p.atKeyword("where"); err != nil {
		return nil, err
	} else if isWhere {
		if _, err := p.next(); err != nil {
			return nil, err
		}
		for {
			l, err := p.parseRef()
			if err != nil {
				return nil, err
			}
			t, err := p.next()
			if err != nil {
				return nil, err
			}
			if t.kind != tokEq {
				return nil, fmt.Errorf("spc: expected '=', got %s (only equality predicates are SPC)", t)
			}
			t, err = p.peek()
			if err != nil {
				return nil, err
			}
			switch t.kind {
			case tokQuestion:
				if _, err := p.next(); err != nil {
					return nil, err
				}
				rawConds = append(rawConds, rawCond{l: l, isSlot: true})
			case tokNumber:
				if _, err := p.next(); err != nil {
					return nil, err
				}
				v, err := value.Parse(t.text)
				if err != nil {
					return nil, err
				}
				rawConds = append(rawConds, rawCond{l: l, c: v})
			case tokString:
				if _, err := p.next(); err != nil {
					return nil, err
				}
				rawConds = append(rawConds, rawCond{l: l, c: value.Str(t.text)})
			case tokIdent:
				if strings.EqualFold(t.text, "null") {
					return nil, fmt.Errorf("spc: 'x = null' never holds; SPC conditions use non-null constants")
				}
				r, err := p.parseRef()
				if err != nil {
					return nil, err
				}
				rawConds = append(rawConds, rawCond{l: l, isRef: true, r: r})
			default:
				return nil, fmt.Errorf("spc: expected reference or literal after '=', got %s", t)
			}
			if isAnd, err := p.atKeyword("and"); err != nil {
				return nil, err
			} else if isAnd {
				if _, err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}

	t, err := p.next()
	if err != nil {
		return nil, err
	}
	if t.kind != tokEOF {
		return nil, fmt.Errorf("spc: trailing input starting at %s", t)
	}

	// Resolve references now that the from-list is known.
	resolve := func(r rawRef) (AttrRef, error) { return p.resolveRef(q, r) }
	for _, o := range rawOut {
		ref, err := resolve(o.ref)
		if err != nil {
			return nil, err
		}
		q.Output = append(q.Output, OutputCol{Ref: ref, As: o.as})
	}
	for _, c := range rawConds {
		l, err := resolve(c.l)
		if err != nil {
			return nil, err
		}
		switch {
		case c.isRef:
			r, err := resolve(c.r)
			if err != nil {
				return nil, err
			}
			q.EqAttrs = append(q.EqAttrs, EqAttr{L: l, R: r})
		case c.isSlot:
			q.Placeholders = append(q.Placeholders, l)
		default:
			q.EqConsts = append(q.EqConsts, EqConst{A: l, C: c.c})
		}
	}
	return q, nil
}

// parseRef parses "ident" or "ident.ident".
func (p *parser) parseRef() (rawRef, error) {
	t, err := p.next()
	if err != nil {
		return rawRef{}, err
	}
	if t.kind != tokIdent {
		return rawRef{}, fmt.Errorf("spc: expected attribute reference, got %s", t)
	}
	dot, err := p.peek()
	if err != nil {
		return rawRef{}, err
	}
	if dot.kind != tokDot {
		return rawRef{attr: t.text, pos: t.pos}, nil
	}
	if _, err := p.next(); err != nil {
		return rawRef{}, err
	}
	t2, err := p.next()
	if err != nil {
		return rawRef{}, err
	}
	if t2.kind != tokIdent {
		return rawRef{}, fmt.Errorf("spc: expected attribute after '.', got %s", t2)
	}
	return rawRef{alias: t.text, attr: t2.text, pos: t.pos}, nil
}

// resolveRef binds a raw reference to an atom. Qualified references resolve
// by alias (or relation name when no alias was given); bare references must
// match exactly one atom's relation.
func (p *parser) resolveRef(q *Query, r rawRef) (AttrRef, error) {
	if r.alias != "" {
		for i, at := range q.Atoms {
			name := at.Alias
			if name == "" {
				name = at.Rel
			}
			if name == r.alias {
				return AttrRef{Atom: i, Attr: r.attr}, nil
			}
		}
		return AttrRef{}, fmt.Errorf("spc: unknown alias %q in reference %s.%s", r.alias, r.alias, r.attr)
	}
	found := -1
	for i, at := range q.Atoms {
		rel, ok := p.cat.Relation(at.Rel)
		if !ok {
			return AttrRef{}, fmt.Errorf("spc: unknown relation %q", at.Rel)
		}
		if rel.Has(r.attr) {
			if found >= 0 {
				return AttrRef{}, fmt.Errorf("spc: ambiguous attribute %q (atoms %d and %d); qualify it", r.attr, found, i)
			}
			found = i
		}
	}
	if found < 0 {
		return AttrRef{}, fmt.Errorf("spc: attribute %q not found in any from-list relation", r.attr)
	}
	return AttrRef{Atom: found, Attr: r.attr}, nil
}
