// Package spc models SPC (select–project–Cartesian-product, a.k.a.
// conjunctive) queries
//
//	Q(Z) = π_Z σ_C (S1 × ... × Sn)
//
// where each Si is a (renaming of a) relation schema and C is a conjunction
// of equality atoms x = y or x = c over attribute occurrences (paper,
// Section 2). The package also provides the equality closure Σ_Q, the
// derived parameter sets X_B, X_C and X^i_Q used by the boundedness
// characterizations, and the Lemma 1 query rewriting gQ.
package spc

import (
	"fmt"
	"sort"
	"strings"

	"bcq/internal/schema"
	"bcq/internal/value"
)

// AttrRef identifies one attribute occurrence S_i[A]: attribute Attr of the
// query's i-th atom.
type AttrRef struct {
	// Atom indexes into Query.Atoms.
	Atom int
	// Attr is an attribute name of the atom's relation schema.
	Attr string
}

// Atom is one occurrence S_i of a relation schema in the Cartesian product,
// under an alias (queries may use the same relation several times).
type Atom struct {
	// Rel names a relation schema in the catalog.
	Rel string
	// Alias is the name the query uses for this occurrence. Aliases are
	// unique within a query; an empty alias defaults to the relation name
	// during validation.
	Alias string
}

// EqAttr is an equality condition S[A] = S'[A'] between two attribute
// occurrences.
type EqAttr struct {
	L, R AttrRef
}

// EqConst is an equality condition S[A] = c pinning an attribute occurrence
// to a constant.
type EqConst struct {
	A AttrRef
	C value.Value
}

// OutputCol is one column of the projection list Z.
type OutputCol struct {
	Ref AttrRef
	// As is the output column name; defaults to the attribute name.
	As string
}

// Query is an SPC query. Construct with NewQuery or Parse and treat as
// immutable afterwards; the analysis packages cache derived structures
// keyed by pointer identity.
type Query struct {
	// Name labels the query in diagnostics and experiment output.
	Name string
	// Atoms is S1 × ... × Sn, n ≥ 1.
	Atoms []Atom
	// EqAttrs and EqConsts together form the selection condition C.
	EqAttrs  []EqAttr
	EqConsts []EqConst
	// Placeholders are parameter slots "S[A] = ?" of a parameterized query
	// template (paper, Example 1(2)): attributes a user will instantiate
	// with constants at execution time. A placeholder makes its attribute a
	// parameter of the query — it joins X^i_Q and the dominating-parameter
	// candidate pool — but contributes no condition until instantiated
	// (it is in neither X_B nor X_C), matching the paper's analysis of Q1:
	// the template itself is not bounded, yet instantiating a dominating
	// subset of its slots makes it effectively bounded.
	Placeholders []AttrRef
	// Output is the projection list Z. An empty Output makes the query
	// Boolean: its answer is the zero-column relation, nonempty iff
	// σ_C(S1 × ... × Sn) is nonempty.
	Output []OutputCol
}

// NumSel returns #-sel, the number of equality atoms in the selection
// condition (the paper's query-complexity knob, Section 6).
func (q *Query) NumSel() int { return len(q.EqAttrs) + len(q.EqConsts) + len(q.Placeholders) }

// NumProd returns #-prod, the number of Cartesian products in the query
// (atoms minus one).
func (q *Query) NumProd() int { return len(q.Atoms) - 1 }

// IsBoolean reports whether the query has an empty projection list.
func (q *Query) IsBoolean() bool { return len(q.Output) == 0 }

// Size returns |Q|, measured as the total number of syntactic elements:
// atom attributes, condition atoms and output columns. It is the quantity
// the paper's complexity bounds are stated in.
func (q *Query) Size(cat *schema.Catalog) int {
	n := 0
	for _, at := range q.Atoms {
		if r, ok := cat.Relation(at.Rel); ok {
			n += r.Arity()
		}
	}
	return n + q.NumSel() + len(q.Output)
}

// Validate checks the query against a catalog: every atom names a known
// relation, aliases are unique (empty aliases are filled in with the
// relation name), every attribute reference resolves, and the query has at
// least one atom. It mutates only empty aliases.
func (q *Query) Validate(cat *schema.Catalog) error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("spc: query %s has no atoms", q.Name)
	}
	seen := make(map[string]bool, len(q.Atoms))
	for i := range q.Atoms {
		at := &q.Atoms[i]
		if _, ok := cat.Relation(at.Rel); !ok {
			return fmt.Errorf("spc: query %s: unknown relation %s", q.Name, at.Rel)
		}
		if at.Alias == "" {
			at.Alias = at.Rel
		}
		if seen[at.Alias] {
			return fmt.Errorf("spc: query %s: duplicate alias %s", q.Name, at.Alias)
		}
		seen[at.Alias] = true
	}
	check := func(ref AttrRef) error {
		if ref.Atom < 0 || ref.Atom >= len(q.Atoms) {
			return fmt.Errorf("spc: query %s: attribute reference to atom %d out of range", q.Name, ref.Atom)
		}
		rel, _ := cat.Relation(q.Atoms[ref.Atom].Rel)
		if !rel.Has(ref.Attr) {
			return fmt.Errorf("spc: query %s: relation %s (alias %s) has no attribute %s",
				q.Name, rel.Name(), q.Atoms[ref.Atom].Alias, ref.Attr)
		}
		return nil
	}
	for _, e := range q.EqAttrs {
		if err := check(e.L); err != nil {
			return err
		}
		if err := check(e.R); err != nil {
			return err
		}
	}
	for _, e := range q.EqConsts {
		if err := check(e.A); err != nil {
			return err
		}
		if e.C.IsNull() {
			return fmt.Errorf("spc: query %s: equality with null constant is never satisfied", q.Name)
		}
	}
	for _, ref := range q.Placeholders {
		if err := check(ref); err != nil {
			return err
		}
	}
	for i := range q.Output {
		if err := check(q.Output[i].Ref); err != nil {
			return err
		}
		if q.Output[i].As == "" {
			q.Output[i].As = q.Output[i].Ref.Attr
		}
	}
	return nil
}

// AtomIndexByAlias resolves an alias to an atom index, or -1.
func (q *Query) AtomIndexByAlias(alias string) int {
	for i, at := range q.Atoms {
		if at.Alias == alias {
			return i
		}
	}
	return -1
}

// RefString renders an attribute occurrence as "alias.attr".
func (q *Query) RefString(ref AttrRef) string {
	if ref.Atom >= 0 && ref.Atom < len(q.Atoms) {
		return q.Atoms[ref.Atom].Alias + "." + ref.Attr
	}
	return fmt.Sprintf("atom%d.%s", ref.Atom, ref.Attr)
}

// String renders the query in the parseable SQL-ish surface syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if q.IsBoolean() {
		b.WriteString("exists")
	}
	for i, col := range q.Output {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(q.RefString(col.Ref))
		if col.As != "" && col.As != col.Ref.Attr {
			b.WriteString(" as ")
			b.WriteString(col.As)
		}
	}
	b.WriteString(" from ")
	for i, at := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(at.Rel)
		if at.Alias != "" && at.Alias != at.Rel {
			b.WriteString(" as ")
			b.WriteString(at.Alias)
		}
	}
	wrote := false
	writeCond := func(s string) {
		if !wrote {
			b.WriteString(" where ")
			wrote = true
		} else {
			b.WriteString(" and ")
		}
		b.WriteString(s)
	}
	for _, e := range q.EqAttrs {
		writeCond(q.RefString(e.L) + " = " + q.RefString(e.R))
	}
	for _, e := range q.EqConsts {
		writeCond(q.RefString(e.A) + " = " + e.C.String())
	}
	for _, ref := range q.Placeholders {
		writeCond(q.RefString(ref) + " = ?")
	}
	return b.String()
}

// Clone returns a deep copy of the query that can be mutated independently.
func (q *Query) Clone() *Query {
	out := &Query{
		Name:     q.Name,
		Atoms:    append([]Atom(nil), q.Atoms...),
		EqAttrs:  append([]EqAttr(nil), q.EqAttrs...),
		EqConsts: append([]EqConst(nil), q.EqConsts...),
		Output:   append([]OutputCol(nil), q.Output...),

		Placeholders: append([]AttrRef(nil), q.Placeholders...),
	}
	return out
}

// Instantiate returns a copy of the query with each given attribute
// occurrence pinned to a constant (adding x = c conditions). It implements
// the paper's Q(X_P = ā) notation for parameterized queries.
func (q *Query) Instantiate(bindings map[AttrRef]value.Value) *Query {
	out := q.Clone()
	if len(bindings) > 0 {
		out.Name = q.Name + "#inst"
	}
	refs := make([]AttrRef, 0, len(bindings))
	for ref := range bindings {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Atom != refs[j].Atom {
			return refs[i].Atom < refs[j].Atom
		}
		return refs[i].Attr < refs[j].Attr
	})
	for _, ref := range refs {
		out.EqConsts = append(out.EqConsts, EqConst{A: ref, C: bindings[ref]})
	}
	// A bound placeholder is no longer a slot.
	var remaining []AttrRef
	for _, ref := range out.Placeholders {
		if _, bound := bindings[ref]; !bound {
			remaining = append(remaining, ref)
		}
	}
	out.Placeholders = remaining
	return out
}
