package spc

import (
	"bcq/internal/schema"
)

// socialCatalog is the schema of the paper's Example 1: photo albums,
// friendship and photo tagging on a social network.
func socialCatalog() *schema.Catalog {
	return schema.MustCatalog(
		schema.MustRelation("in_album", "photo_id", "album_id"),
		schema.MustRelation("friends", "user_id", "friend_id"),
		schema.MustRelation("tagging", "photo_id", "tagger_id", "taggee_id"),
	)
}

// socialAccess is the access schema A0 of Example 2: 1000 photos per album,
// 5000 friends per user, one tag per (photo, taggee).
func socialAccess() *schema.AccessSchema {
	return schema.MustAccessSchema(
		schema.MustAccessConstraint("in_album", []string{"album_id"}, []string{"photo_id"}, 1000),
		schema.MustAccessConstraint("friends", []string{"user_id"}, []string{"friend_id"}, 5000),
		schema.MustAccessConstraint("tagging", []string{"photo_id", "taggee_id"}, []string{"tagger_id"}, 1),
	)
}

// q0Source is query Q0 of Example 1: photos in album a0 in which u0 is
// tagged by one of u0's friends.
const q0Source = `
	query Q0:
	select t1.photo_id
	from in_album as t1, friends as t2, tagging as t3
	where t1.album_id = 'a0'
	  and t2.user_id = 'u0'
	  and t1.photo_id = t3.photo_id
	  and t3.tagger_id = t2.friend_id
	  and t3.taggee_id = t2.user_id
`

// q1Source is query Q1: the same as Q0 but parameterized (no constants).
const q1Source = `
	query Q1:
	select t1.photo_id
	from in_album as t1, friends as t2, tagging as t3
	where t1.photo_id = t3.photo_id
	  and t3.tagger_id = t2.friend_id
	  and t3.taggee_id = t2.user_id
`

func mustQ0() *Query { return MustParse(q0Source, socialCatalog()) }
func mustQ1() *Query { return MustParse(q1Source, socialCatalog()) }
