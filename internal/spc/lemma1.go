package spc

import (
	"fmt"

	"bcq/internal/schema"
	"bcq/internal/value"
)

// This file implements the query-side half of Lemma 1: for any relational
// schema R there is a single relation schema R, a linear-time database
// transformation gD (see package storage) and a linear-time query rewriting
// gQ such that Q(D) = gQ(Q)(gD(D)) for every SPC query Q and instance D.
//
// The encoding is the standard tagged union: the single relation
// "unified" has a tag attribute naming the source relation plus one
// namespaced column per source attribute; gD turns each tuple of relation r
// into a wide tuple with tag = 'r' and nulls outside r's columns, and gQ
// pins each atom's tag to its relation name. Because equality never holds
// on nulls, conditions behave identically. Access constraints on r become
// constraints with the tag attribute added to X.

// UnifiedTagAttr is the discriminator attribute of the Lemma 1 encoding.
const UnifiedTagAttr = "rel_tag"

// UnifiedRelName is the name of the single relation produced by the
// encoding.
const UnifiedRelName = "unified"

// UnifiedAttrName returns the namespaced column for attribute a of
// relation rel in the unified schema.
func UnifiedAttrName(rel, a string) string { return rel + "__" + a }

// UnifyCatalog builds the single-relation catalog of Lemma 1 from a
// multi-relation catalog.
func UnifyCatalog(cat *schema.Catalog) (*schema.Catalog, error) {
	attrs := []string{UnifiedTagAttr}
	for _, r := range cat.Relations() {
		for _, a := range r.Attrs() {
			attrs = append(attrs, UnifiedAttrName(r.Name(), a))
		}
	}
	wide, err := schema.NewRelation(UnifiedRelName, attrs...)
	if err != nil {
		return nil, err
	}
	return schema.NewCatalog(wide)
}

// RewriteQueryUnified implements gQ: it rewrites an SPC query over cat into
// an equivalent SPC query over the unified single-relation catalog. The
// rewriting is linear in |Q|.
func RewriteQueryUnified(q *Query, cat *schema.Catalog) (*Query, error) {
	if err := q.Validate(cat); err != nil {
		return nil, err
	}
	out := &Query{Name: q.Name + "#unified"}
	mapRef := func(ref AttrRef) AttrRef {
		return AttrRef{Atom: ref.Atom, Attr: UnifiedAttrName(q.Atoms[ref.Atom].Rel, ref.Attr)}
	}
	for i, at := range q.Atoms {
		alias := at.Alias
		if alias == "" {
			alias = fmt.Sprintf("u%d", i)
		}
		out.Atoms = append(out.Atoms, Atom{Rel: UnifiedRelName, Alias: alias})
		out.EqConsts = append(out.EqConsts, EqConst{
			A: AttrRef{Atom: i, Attr: UnifiedTagAttr},
			C: value.Str(at.Rel),
		})
	}
	for _, e := range q.EqAttrs {
		out.EqAttrs = append(out.EqAttrs, EqAttr{L: mapRef(e.L), R: mapRef(e.R)})
	}
	for _, e := range q.EqConsts {
		out.EqConsts = append(out.EqConsts, EqConst{A: mapRef(e.A), C: e.C})
	}
	for _, col := range q.Output {
		out.Output = append(out.Output, OutputCol{Ref: mapRef(col.Ref), As: col.As})
	}
	return out, nil
}

// RewriteAccessSchemaUnified carries an access schema across the Lemma 1
// encoding: X → (Y, N) on relation r becomes ({rel_tag} ∪ X') → (Y', N) on
// the unified relation, where X' and Y' are the namespaced columns. Adding
// the tag to X preserves both the cardinality bound (each tag slice is a
// copy of the original relation) and the index (lookups always supply the
// tag, which gQ pins to a constant).
func RewriteAccessSchemaUnified(a *schema.AccessSchema) (*schema.AccessSchema, error) {
	var constraints []schema.AccessConstraint
	for _, ac := range a.Constraints() {
		x := []string{UnifiedTagAttr}
		for _, attr := range ac.X {
			x = append(x, UnifiedAttrName(ac.Rel, attr))
		}
		var y []string
		for _, attr := range ac.Y {
			y = append(y, UnifiedAttrName(ac.Rel, attr))
		}
		nac, err := schema.NewAccessConstraint(UnifiedRelName, x, y, ac.N)
		if err != nil {
			return nil, err
		}
		constraints = append(constraints, nac)
	}
	return schema.NewAccessSchema(constraints...)
}
