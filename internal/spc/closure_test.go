package spc

import (
	"reflect"
	"sort"
	"testing"

	"bcq/internal/value"
)

func classSetAttrs(t *testing.T, c *Closure, s ClassSet) []string {
	t.Helper()
	var out []string
	for _, id := range s.Members() {
		for _, ref := range c.Members(id) {
			out = append(out, c.Query().RefString(ref))
		}
	}
	sort.Strings(out)
	return out
}

func TestClosureQ0Classes(t *testing.T) {
	c, err := NewClosure(mustQ0(), socialCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Satisfiable() {
		t.Fatal("Q0 is satisfiable")
	}
	// 7 attribute occurrences total; photo_id of t1 and t3 merge, and
	// tagger_id/friend_id merge, taggee_id/user_id merge -> 4 classes.
	if c.NumRefs() != 7 {
		t.Errorf("NumRefs = %d, want 7", c.NumRefs())
	}
	if c.NumClasses() != 4 {
		t.Errorf("NumClasses = %d, want 4", c.NumClasses())
	}
	// Σ_Q ⊢ t1.photo_id = t3.photo_id.
	if !c.Equal(AttrRef{0, "photo_id"}, AttrRef{2, "photo_id"}) {
		t.Error("pid1 = pid2 not derived")
	}
	if c.Equal(AttrRef{0, "photo_id"}, AttrRef{0, "album_id"}) {
		t.Error("photo_id = album_id wrongly derived")
	}
	// t3.taggee_id = t2.user_id = 'u0': constant propagates to the class.
	id := c.MustClass(AttrRef{2, "taggee_id"})
	v, ok := c.ConstOf(id)
	if !ok || v != value.Str("u0") {
		t.Errorf("taggee class constant = %v, %v", v, ok)
	}
}

func TestClosureQ0DerivedSets(t *testing.T) {
	c, err := NewClosure(mustQ0(), socialCatalog())
	if err != nil {
		t.Fatal(err)
	}
	// X_C: classes of album_id ('a0') and user_id/taggee_id ('u0').
	gotXC := classSetAttrs(t, c, c.XC())
	wantXC := []string{"t1.album_id", "t2.user_id", "t3.taggee_id"}
	if !reflect.DeepEqual(gotXC, wantXC) {
		t.Errorf("X_C = %v, want %v", gotXC, wantXC)
	}
	// X_B: condition classes not equal to output. Output is the photo_id
	// class, so X_B = {album class, user/taggee class, friend/tagger class}.
	gotXB := classSetAttrs(t, c, c.XB())
	wantXB := []string{"t1.album_id", "t2.friend_id", "t2.user_id", "t3.taggee_id", "t3.tagger_id"}
	if !reflect.DeepEqual(gotXB, wantXB) {
		t.Errorf("X_B = %v, want %v", gotXB, wantXB)
	}
	// Output class contains both photo_id occurrences.
	gotZ := classSetAttrs(t, c, c.OutClasses())
	wantZ := []string{"t1.photo_id", "t3.photo_id"}
	if !reflect.DeepEqual(gotZ, wantZ) {
		t.Errorf("Z = %v, want %v", gotZ, wantZ)
	}
}

func TestClosureAtomParams(t *testing.T) {
	c, err := NewClosure(mustQ0(), socialCatalog())
	if err != nil {
		t.Fatal(err)
	}
	// X^1_Q (atom 0, in_album): photo_id and album_id are both parameters.
	if got := c.AtomParamAttrs(0); !reflect.DeepEqual(got, []string{"album_id", "photo_id"}) {
		t.Errorf("X^1_Q = %v", got)
	}
	if got := c.AtomParamAttrs(1); !reflect.DeepEqual(got, []string{"friend_id", "user_id"}) {
		t.Errorf("X^2_Q = %v", got)
	}
	if got := c.AtomParamAttrs(2); !reflect.DeepEqual(got, []string{"photo_id", "tagger_id", "taggee_id"}) &&
		!reflect.DeepEqual(got, []string{"photo_id", "taggee_id", "tagger_id"}) {
		// sorted order
		if !reflect.DeepEqual(got, []string{"photo_id", "taggee_id", "tagger_id"}) {
			t.Errorf("X^3_Q = %v", got)
		}
	}
	// X^1_C: album_id is instantiated; photo_id is not.
	if got := c.AtomInstantiated(0); !reflect.DeepEqual(got, []string{"album_id"}) {
		t.Errorf("X^1_C = %v", got)
	}
}

func TestClosureUnsatisfiable(t *testing.T) {
	q := MustParse(`select photo_id from in_album where album_id = 1 and album_id = 2`, socialCatalog())
	c, err := NewClosure(q, socialCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if c.Satisfiable() {
		t.Error("album_id = 1 and album_id = 2 must be unsatisfiable")
	}
}

func TestClosureUnsatisfiableViaTransitivity(t *testing.T) {
	q := MustParse(`select t1.photo_id from in_album as t1, tagging as t3
		where t1.photo_id = t3.photo_id and t1.photo_id = 1 and t3.photo_id = 2`, socialCatalog())
	c, err := NewClosure(q, socialCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if c.Satisfiable() {
		t.Error("transitive constant clash must be unsatisfiable")
	}
}

func TestClosureConsistentConstants(t *testing.T) {
	q := MustParse(`select t1.photo_id from in_album as t1, tagging as t3
		where t1.photo_id = t3.photo_id and t1.photo_id = 1 and t3.photo_id = 1`, socialCatalog())
	c, err := NewClosure(q, socialCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Satisfiable() {
		t.Error("consistent duplicate constants must stay satisfiable")
	}
}

func TestClosureBooleanQuery(t *testing.T) {
	q := MustParse("select exists from friends where friends.user_id = friends.friend_id", socialCatalog())
	c, err := NewClosure(q, socialCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !c.OutClasses().IsEmpty() {
		t.Error("Boolean query has no output classes")
	}
	if c.XB().Len() != 1 {
		t.Errorf("X_B = %v", c.ClassSetNames(c.XB()))
	}
}

func TestClassQueriesUnknownRef(t *testing.T) {
	c, err := NewClosure(mustQ0(), socialCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if c.Class(AttrRef{Atom: 9, Attr: "x"}) != -1 {
		t.Error("unknown ref must map to -1")
	}
	if c.Equal(AttrRef{Atom: 9, Attr: "x"}, AttrRef{Atom: 0, Attr: "photo_id"}) {
		t.Error("unknown ref equality")
	}
	if _, ok := c.ConstOf(-1); ok {
		t.Error("ConstOf(-1)")
	}
}

func TestParamRefsDeterministic(t *testing.T) {
	c1, _ := NewClosure(mustQ0(), socialCatalog())
	c2, _ := NewClosure(mustQ0(), socialCatalog())
	if !reflect.DeepEqual(c1.ParamRefs(), c2.ParamRefs()) {
		t.Error("ParamRefs order unstable")
	}
}

func TestMembersOfAtom(t *testing.T) {
	c, _ := NewClosure(mustQ0(), socialCatalog())
	pidClass := c.MustClass(AttrRef{0, "photo_id"})
	if got := c.MembersOfAtom(pidClass, 2); !reflect.DeepEqual(got, []string{"photo_id"}) {
		t.Errorf("MembersOfAtom = %v", got)
	}
	if got := c.MembersOfAtom(pidClass, 1); got != nil {
		t.Errorf("MembersOfAtom(friends) = %v, want none", got)
	}
}

func TestClassSetOps(t *testing.T) {
	s := NewClassSet(4)
	s.Add(1)
	s.Add(70) // force growth
	if !s.Has(1) || !s.Has(70) || s.Has(2) {
		t.Error("Has wrong")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	u := s.Clone()
	u.Remove(1)
	if !s.Has(1) || u.Has(1) {
		t.Error("Clone/Remove aliasing")
	}
	var v ClassSet
	v.AddAll(s)
	if !v.Equal(s) || !v.ContainsAll(s) {
		t.Error("AddAll/Equal/ContainsAll")
	}
	v.Add(3)
	if s.ContainsAll(v) || !v.ContainsAll(s) {
		t.Error("ContainsAll direction")
	}
	if got := v.Members(); !reflect.DeepEqual(got, []int{1, 3, 70}) {
		t.Errorf("Members = %v", got)
	}
	var empty ClassSet
	if !empty.IsEmpty() || empty.Len() != 0 || empty.Has(0) {
		t.Error("empty set misbehaves")
	}
	if !empty.Equal(NewClassSet(10)) {
		t.Error("empty sets of different capacity must be Equal")
	}
}
