package spc

import "math/bits"

// ClassSet is a bitset over equivalence-class ids of a Closure. Class ids
// are small and dense (at most the number of attribute occurrences in the
// query), so a word-array bitset is both compact and fast; every closure
// computation in the deduction engine manipulates these sets.
type ClassSet struct {
	words []uint64
}

// NewClassSet returns an empty set sized for n classes.
func NewClassSet(n int) ClassSet {
	return ClassSet{words: make([]uint64, (n+63)/64)}
}

// Add inserts class id c, growing the set if needed.
func (s *ClassSet) Add(c int) {
	w := c / 64
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << uint(c%64)
}

// Remove deletes class id c if present.
func (s *ClassSet) Remove(c int) {
	w := c / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(c%64)
	}
}

// Has reports membership of class id c.
func (s ClassSet) Has(c int) bool {
	w := c / 64
	return w < len(s.words) && s.words[w]&(1<<uint(c%64)) != 0
}

// AddAll inserts every member of t.
func (s *ClassSet) AddAll(t ClassSet) {
	for len(s.words) < len(t.words) {
		s.words = append(s.words, 0)
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// ContainsAll reports whether every member of t is in s.
func (s ClassSet) ContainsAll(t ClassSet) bool {
	for i, w := range t.words {
		var sw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if w&^sw != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of members.
func (s ClassSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no members.
func (s ClassSet) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s ClassSet) Clone() ClassSet {
	return ClassSet{words: append([]uint64(nil), s.words...)}
}

// Members returns the class ids in ascending order.
func (s ClassSet) Members() []int {
	var out []int
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*64+b)
			w &= w - 1
		}
	}
	return out
}

// Equal reports set equality.
func (s ClassSet) Equal(t ClassSet) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(t.words) {
			b = t.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}
