package spc

import (
	"strings"
	"testing"

	"bcq/internal/schema"
	"bcq/internal/value"
)

func TestParseQ0(t *testing.T) {
	q := mustQ0()
	if q.Name != "Q0" {
		t.Errorf("Name = %q", q.Name)
	}
	if len(q.Atoms) != 3 || q.NumProd() != 2 {
		t.Fatalf("atoms = %v", q.Atoms)
	}
	if q.NumSel() != 5 {
		t.Errorf("#-sel = %d, want 5", q.NumSel())
	}
	if len(q.EqConsts) != 2 || len(q.EqAttrs) != 3 {
		t.Errorf("conds: %d consts, %d attr equalities", len(q.EqConsts), len(q.EqAttrs))
	}
	if q.IsBoolean() {
		t.Error("Q0 is not Boolean")
	}
	if q.Output[0].Ref != (AttrRef{Atom: 0, Attr: "photo_id"}) {
		t.Errorf("output = %v", q.Output)
	}
}

func TestParseBoolean(t *testing.T) {
	q := MustParse("select exists from friends where friends.user_id = 'u0'", socialCatalog())
	if !q.IsBoolean() {
		t.Fatal("exists query must be Boolean")
	}
	if len(q.EqConsts) != 1 {
		t.Fatalf("conds = %v", q.EqConsts)
	}
}

func TestParseBareAttributeResolution(t *testing.T) {
	// album_id appears only in in_album: bare reference is fine.
	q := MustParse("select photo_id from in_album where album_id = 'a'", socialCatalog())
	if q.Output[0].Ref.Atom != 0 {
		t.Error("bare attr resolved to wrong atom")
	}
	// photo_id appears in both in_album and tagging: ambiguous.
	if _, err := Parse("select photo_id from in_album, tagging", socialCatalog()); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous bare attr accepted (err = %v)", err)
	}
}

func TestParseSelfJoinAliases(t *testing.T) {
	q := MustParse(`select f1.friend_id from friends as f1, friends as f2
		where f1.friend_id = f2.user_id and f1.user_id = 'u0'`, socialCatalog())
	if len(q.Atoms) != 2 || q.Atoms[0].Alias != "f1" || q.Atoms[1].Alias != "f2" {
		t.Fatalf("atoms = %v", q.Atoms)
	}
	if q.EqAttrs[0].L != (AttrRef{Atom: 0, Attr: "friend_id"}) ||
		q.EqAttrs[0].R != (AttrRef{Atom: 1, Attr: "user_id"}) {
		t.Errorf("join = %v", q.EqAttrs[0])
	}
}

func TestParseLiterals(t *testing.T) {
	q := MustParse(`select photo_id from tagging where tagger_id = 42 and taggee_id = 'it''s'`, socialCatalog())
	if q.EqConsts[0].C != value.Int(42) {
		t.Errorf("int literal = %v", q.EqConsts[0].C)
	}
	if q.EqConsts[1].C != value.Str("it's") {
		t.Errorf("string literal = %v", q.EqConsts[1].C)
	}
}

func TestParseComments(t *testing.T) {
	q := MustParse(`select photo_id -- projection
		from in_album -- the album table
		where album_id = 9 -- pinned`, socialCatalog())
	if q.NumSel() != 1 {
		t.Fatalf("comments broke parsing: %v", q)
	}
}

func TestParseOutputAlias(t *testing.T) {
	q := MustParse("select t1.photo_id as pid from in_album as t1", socialCatalog())
	if q.Output[0].As != "pid" {
		t.Errorf("As = %q", q.Output[0].As)
	}
}

func TestParseErrors(t *testing.T) {
	cat := socialCatalog()
	cases := []string{
		"",
		"select",
		"select photo_id",                        // no from
		"select photo_id from nowhere",           // unknown relation
		"select nope from in_album",              // unknown attribute
		"select t9.photo_id from in_album as t1", // unknown alias
		"select photo_id from in_album where album_id < 5",    // non-equality
		"select photo_id from in_album where album_id = null", // null literal
		"select photo_id from in_album extra",                 // trailing tokens
		"select photo_id from in_album as t1, friends as t1",  // duplicate alias
		"select photo_id from in_album where album_id = 'x",   // unterminated string
		"select photo_id from in_album where album_id =",      // missing rhs
		"query : select photo_id from in_album",               // missing name
	}
	for _, src := range cases {
		if _, err := Parse(src, cat); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	cat := socialCatalog()
	for _, src := range []string{q0Source, q1Source,
		"select exists from friends where friends.user_id = 1",
		"select f1.friend_id from friends as f1, friends as f2 where f1.friend_id = f2.user_id",
	} {
		q := MustParse(src, cat)
		q2, err := Parse(q.String(), cat)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Errorf("round trip unstable:\n  %s\n  %s", q.String(), q2.String())
		}
	}
}

func TestValidateDetectsBadRefs(t *testing.T) {
	cat := socialCatalog()
	q := &Query{
		Name:   "bad",
		Atoms:  []Atom{{Rel: "friends"}},
		Output: []OutputCol{{Ref: AttrRef{Atom: 0, Attr: "nope"}}},
	}
	if err := q.Validate(cat); err == nil {
		t.Error("bad output ref accepted")
	}
	q2 := &Query{
		Name:    "bad2",
		Atoms:   []Atom{{Rel: "friends"}},
		EqAttrs: []EqAttr{{L: AttrRef{Atom: 5, Attr: "user_id"}, R: AttrRef{Atom: 0, Attr: "user_id"}}},
	}
	if err := q2.Validate(cat); err == nil {
		t.Error("out-of-range atom accepted")
	}
	q3 := &Query{Name: "empty"}
	if err := q3.Validate(cat); err == nil {
		t.Error("query with no atoms accepted")
	}
}

func TestQuerySize(t *testing.T) {
	cat := socialCatalog()
	q := mustQ0()
	// 2 + 2 + 3 attributes + 5 conditions + 1 output = 13.
	if got := q.Size(cat); got != 13 {
		t.Errorf("Size = %d, want 13", got)
	}
}

func TestInstantiateDeterministic(t *testing.T) {
	q := mustQ1()
	b := map[AttrRef]value.Value{
		{Atom: 0, Attr: "album_id"}: value.Str("a0"),
		{Atom: 1, Attr: "user_id"}:  value.Str("u0"),
	}
	s1 := q.Instantiate(b).String()
	for i := 0; i < 20; i++ {
		if s2 := q.Instantiate(b).String(); s2 != s1 {
			t.Fatalf("Instantiate nondeterministic:\n%s\n%s", s1, s2)
		}
	}
	inst := q.Instantiate(b)
	if len(inst.EqConsts) != len(q.EqConsts)+2 {
		t.Error("Instantiate must add two constant conditions")
	}
	if len(q.EqConsts) != 0 {
		t.Error("Instantiate must not mutate the receiver")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := mustQ0()
	c := q.Clone()
	c.EqConsts = append(c.EqConsts, EqConst{A: AttrRef{Atom: 0, Attr: "photo_id"}, C: value.Int(1)})
	c.Atoms[0].Alias = "zzz"
	if len(q.EqConsts) != 2 || q.Atoms[0].Alias != "t1" {
		t.Error("Clone shares state with original")
	}
}

func TestValidateFillsDefaults(t *testing.T) {
	cat := socialCatalog()
	q := &Query{
		Atoms:  []Atom{{Rel: "friends"}},
		Output: []OutputCol{{Ref: AttrRef{Atom: 0, Attr: "friend_id"}}},
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	if q.Atoms[0].Alias != "friends" {
		t.Errorf("default alias = %q", q.Atoms[0].Alias)
	}
	if q.Output[0].As != "friend_id" {
		t.Errorf("default output name = %q", q.Output[0].As)
	}
}

func TestUnifiedCatalog(t *testing.T) {
	cat := socialCatalog()
	ucat, err := UnifyCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	wide, ok := ucat.Relation(UnifiedRelName)
	if !ok {
		t.Fatal("no unified relation")
	}
	// 1 tag + 2 + 2 + 3 = 8 attributes.
	if wide.Arity() != 8 {
		t.Errorf("arity = %d, want 8", wide.Arity())
	}
	if !wide.Has(UnifiedAttrName("tagging", "tagger_id")) {
		t.Error("missing namespaced attribute")
	}
}

func TestRewriteQueryUnified(t *testing.T) {
	cat := socialCatalog()
	q := mustQ0()
	uq, err := RewriteQueryUnified(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	ucat, _ := UnifyCatalog(cat)
	if err := uq.Validate(ucat); err != nil {
		t.Fatalf("rewritten query invalid: %v", err)
	}
	// Three tag pins plus the two original constants.
	if len(uq.EqConsts) != 5 {
		t.Errorf("EqConsts = %d, want 5", len(uq.EqConsts))
	}
	if len(uq.EqAttrs) != len(q.EqAttrs) {
		t.Errorf("EqAttrs = %d, want %d", len(uq.EqAttrs), len(q.EqAttrs))
	}
	for _, at := range uq.Atoms {
		if at.Rel != UnifiedRelName {
			t.Errorf("atom %v not over unified relation", at)
		}
	}
}

func TestRewriteAccessSchemaUnified(t *testing.T) {
	ua, err := RewriteAccessSchemaUnified(socialAccess())
	if err != nil {
		t.Fatal(err)
	}
	if ua.Size() != 3 {
		t.Fatalf("size = %d", ua.Size())
	}
	for _, ac := range ua.Constraints() {
		if ac.Rel != UnifiedRelName {
			t.Errorf("constraint %v not on unified relation", ac)
		}
		found := false
		for _, x := range ac.X {
			if x == UnifiedTagAttr {
				found = true
			}
		}
		if !found {
			t.Errorf("constraint %v lacks the tag attribute in X", ac)
		}
	}
}

func TestQuerySizeUnknownRelationIgnored(t *testing.T) {
	// Size must not panic for un-validated queries naming unknown relations.
	q := &Query{Atoms: []Atom{{Rel: "ghost"}}}
	if got := q.Size(schema.MustCatalog(schema.MustRelation("r", "a"))); got != 0 {
		t.Errorf("Size = %d", got)
	}
}
