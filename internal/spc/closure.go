package spc

import (
	"fmt"
	"sort"

	"bcq/internal/schema"
	"bcq/internal/value"
)

// Closure is the equality closure Σ_Q of a query: the set of all equality
// atoms derivable from the selection condition C by transitivity (paper,
// Section 3.1). It is represented as a partition of *all* attribute
// occurrences of the query — every attribute of every atom's relation, not
// just the ones mentioned in C or Z, because deduction with access
// constraints may pass through unmentioned attributes — into equivalence
// classes, with at most one constant per class.
//
// All boundedness machinery works over the class ids this type assigns:
// Σ_Q ⊢ x = y is an O(1) class comparison, Σ_Q ⊢ x = c is an O(1) constant
// lookup, and the derived sets X_B, X_C, Z and X^i_Q are ClassSets.
type Closure struct {
	q   *Query
	cat *schema.Catalog

	refs    []AttrRef       // all attribute occurrences, in (atom, attr-position) order
	refID   map[AttrRef]int // ref -> index into refs
	classOf []int           // ref index -> class id (dense, 0-based)
	members [][]AttrRef     // class id -> occurrences (in ref order)

	consts      []value.Value // class id -> pinned constant (Null if none)
	hasConst    []bool        // class id -> whether consts is meaningful
	satisfiable bool          // false iff two distinct constants were equated

	params     ClassSet   // classes of attributes appearing in C or Z
	paramRefs  []AttrRef  // attribute occurrences appearing in C or Z (deduplicated, ordered)
	xB, xC     ClassSet   // the paper's X_B and X_C, as class sets
	out        ClassSet   // classes of Z
	atomParams []ClassSet // X^i_Q per atom, as class sets
	atomAttrs  [][]string // X^i_Q per atom, as sorted attribute-name lists
}

// NewClosure validates q against the catalog and computes Σ_Q and every
// derived set. The computation is O(|Q| α(|Q|)) — a union–find pass over the
// condition followed by linear scans — matching the paper's
// "precomputed in O(|Q|²)" budget with room to spare.
func NewClosure(q *Query, cat *schema.Catalog) (*Closure, error) {
	if err := q.Validate(cat); err != nil {
		return nil, err
	}
	c := &Closure{q: q, cat: cat, refID: make(map[AttrRef]int), satisfiable: true}

	// Enumerate every attribute occurrence of every atom.
	for i, at := range q.Atoms {
		rel, _ := cat.Relation(at.Rel)
		for _, a := range rel.Attrs() {
			ref := AttrRef{Atom: i, Attr: a}
			c.refID[ref] = len(c.refs)
			c.refs = append(c.refs, ref)
		}
	}

	// Union–find over occurrences.
	parent := make([]int, len(c.refs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range q.EqAttrs {
		union(c.refID[e.L], c.refID[e.R])
	}

	// Assign dense class ids in first-occurrence order (deterministic).
	classID := make(map[int]int)
	c.classOf = make([]int, len(c.refs))
	for i := range c.refs {
		root := find(i)
		id, ok := classID[root]
		if !ok {
			id = len(c.members)
			classID[root] = id
			c.members = append(c.members, nil)
		}
		c.classOf[i] = id
		c.members[id] = append(c.members[id], c.refs[i])
	}

	// Pin constants; detect unsatisfiability (S[A] = c and S[A] = d, c ≠ d).
	c.consts = make([]value.Value, len(c.members))
	c.hasConst = make([]bool, len(c.members))
	for _, e := range q.EqConsts {
		id := c.classOf[c.refID[e.A]]
		if c.hasConst[id] && c.consts[id] != e.C {
			c.satisfiable = false
			continue
		}
		c.consts[id] = e.C
		c.hasConst[id] = true
	}

	c.computeDerivedSets()
	return c, nil
}

// computeDerivedSets fills params, X_B, X_C, Z-classes and X^i_Q.
func (c *Closure) computeDerivedSets() {
	n := len(c.members)
	c.params = NewClassSet(n)
	c.xB = NewClassSet(n)
	c.xC = NewClassSet(n)
	c.out = NewClassSet(n)
	c.atomParams = make([]ClassSet, len(c.q.Atoms))
	c.atomAttrs = make([][]string, len(c.q.Atoms))
	for i := range c.atomParams {
		c.atomParams[i] = NewClassSet(n)
	}

	seenRef := make(map[AttrRef]bool)
	addParam := func(ref AttrRef) {
		id := c.MustClass(ref)
		c.params.Add(id)
		c.atomParams[ref.Atom].Add(id)
		if !seenRef[ref] {
			seenRef[ref] = true
			c.paramRefs = append(c.paramRefs, ref)
		}
	}
	// Attribute-name sets per atom are accumulated separately because the
	// indexedness test works on relation attribute names, not classes.
	attrSets := make([]map[string]bool, len(c.q.Atoms))
	for i := range attrSets {
		attrSets[i] = make(map[string]bool)
	}
	note := func(ref AttrRef) {
		addParam(ref)
		attrSets[ref.Atom][ref.Attr] = true
	}

	inCond := NewClassSet(n)
	for _, e := range c.q.EqAttrs {
		note(e.L)
		note(e.R)
		inCond.Add(c.MustClass(e.L))
	}
	for _, e := range c.q.EqConsts {
		note(e.A)
		inCond.Add(c.MustClass(e.A))
	}
	// Placeholders are parameters (they join X^i_Q and the
	// dominating-parameter pool) but impose no condition yet: they enter
	// neither X_B nor X_C until instantiated.
	for _, ref := range c.q.Placeholders {
		note(ref)
	}
	for _, col := range c.q.Output {
		note(col.Ref)
		c.out.Add(c.MustClass(col.Ref))
	}

	// X_C: classes pinned to a constant (paper: Σ_Q ⊢ S[A] = c).
	for id := 0; id < n; id++ {
		if c.hasConst[id] {
			c.xC.Add(id)
		}
	}
	// X_B: classes that appear in the condition but are not output classes
	// (paper: attributes in σ_C with Σ_Q ⊬ S[A] = z for every z ∈ Z).
	for _, id := range inCond.Members() {
		if !c.out.Has(id) {
			c.xB.Add(id)
		}
	}

	for i, set := range attrSets {
		attrs := make([]string, 0, len(set))
		for a := range set {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		c.atomAttrs[i] = attrs
	}
}

// Query returns the underlying query.
func (c *Closure) Query() *Query { return c.q }

// Catalog returns the catalog the query was validated against.
func (c *Closure) Catalog() *schema.Catalog { return c.cat }

// Satisfiable reports whether Σ_Q is free of contradictions (no class is
// pinned to two distinct constants). Unsatisfiable queries return the empty
// answer on every database and are trivially bounded; the checking
// algorithms treat them specially.
func (c *Closure) Satisfiable() bool { return c.satisfiable }

// NumClasses returns the number of equivalence classes.
func (c *Closure) NumClasses() int { return len(c.members) }

// NumRefs returns the number of attribute occurrences.
func (c *Closure) NumRefs() int { return len(c.refs) }

// Class returns the class id of an attribute occurrence, or -1 when the
// occurrence does not exist (unknown atom or attribute).
func (c *Closure) Class(ref AttrRef) int {
	i, ok := c.refID[ref]
	if !ok {
		return -1
	}
	return c.classOf[i]
}

// MustClass is Class but panics on unknown occurrences; for internal use
// where validation has already happened.
func (c *Closure) MustClass(ref AttrRef) int {
	id := c.Class(ref)
	if id < 0 {
		panic(fmt.Sprintf("spc: unknown attribute occurrence %v", ref))
	}
	return id
}

// Equal reports Σ_Q ⊢ a = b.
func (c *Closure) Equal(a, b AttrRef) bool {
	ia, ok := c.refID[a]
	if !ok {
		return false
	}
	ib, ok := c.refID[b]
	if !ok {
		return false
	}
	return c.classOf[ia] == c.classOf[ib]
}

// ConstOf returns the constant pinned to the class, if any
// (Σ_Q ⊢ x = c for members x of the class).
func (c *Closure) ConstOf(class int) (value.Value, bool) {
	if class < 0 || class >= len(c.members) {
		return value.Null, false
	}
	return c.consts[class], c.hasConst[class]
}

// Members returns the attribute occurrences in a class, in enumeration
// order. Callers must not mutate the returned slice.
func (c *Closure) Members(class int) []AttrRef { return c.members[class] }

// MembersOfAtom returns the attribute names of atom i that belong to the
// class.
func (c *Closure) MembersOfAtom(class, atom int) []string {
	var out []string
	for _, ref := range c.members[class] {
		if ref.Atom == atom {
			out = append(out, ref.Attr)
		}
	}
	return out
}

// Params returns the classes of the query's parameters (attributes in C or
// Z).
func (c *Closure) Params() ClassSet { return c.params }

// ParamRefs returns the parameter occurrences in deterministic order.
// Callers must not mutate the returned slice.
func (c *Closure) ParamRefs() []AttrRef { return c.paramRefs }

// XB returns the paper's X_B: classes of condition attributes not equal to
// any output attribute.
func (c *Closure) XB() ClassSet { return c.xB }

// XC returns the paper's X_C: classes pinned to constants.
func (c *Closure) XC() ClassSet { return c.xC }

// OutClasses returns the classes of the projection list Z.
func (c *Closure) OutClasses() ClassSet { return c.out }

// AtomParams returns X^i_Q as a class set: classes of atom i's parameters.
func (c *Closure) AtomParams(i int) ClassSet { return c.atomParams[i] }

// AtomParamAttrs returns X^i_Q as a sorted list of attribute names of atom
// i's relation — the form the indexedness test consumes.
func (c *Closure) AtomParamAttrs(i int) []string { return c.atomAttrs[i] }

// AtomInstantiated returns X^i_C: the attribute names of atom i whose class
// is pinned to a constant.
func (c *Closure) AtomInstantiated(i int) []string {
	var out []string
	for _, a := range c.atomAttrs[i] {
		if c.hasConst[c.MustClass(AttrRef{Atom: i, Attr: a})] {
			out = append(out, a)
		}
	}
	return out
}

// ClassName renders a class for diagnostics as its first member
// ("alias.attr"), with the constant appended when pinned.
func (c *Closure) ClassName(class int) string {
	if class < 0 || class >= len(c.members) || len(c.members[class]) == 0 {
		return fmt.Sprintf("class%d", class)
	}
	s := c.q.RefString(c.members[class][0])
	if c.hasConst[class] {
		s += "=" + c.consts[class].String()
	}
	return s
}

// ClassSetNames renders a class set for diagnostics.
func (c *Closure) ClassSetNames(s ClassSet) []string {
	ids := s.Members()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = c.ClassName(id)
	}
	return out
}
