package experiments

import (
	"encoding/json"
	"io"
)

// Report bundles everything one bqexp invocation produced, in a shape
// that marshals to stable, machine-readable JSON. CI uses it to emit
// benchmark trajectory files (BENCH_*.json) instead of scraping the
// rendered tables; every field is optional — a run restricted with -only
// fills only what it ran.
type Report struct {
	// Panels are the Figure 5 sub-figures that ran, in run order.
	Panels []Panel `json:"panels,omitempty"`
	// Table1 holds the per-dataset algorithm timings (durations in
	// nanoseconds, Go's default).
	Table1 []Table1Row `json:"table1,omitempty"`
	// Table2 holds the complexity-scaling measurements.
	Table2 []Table2Point `json:"table2,omitempty"`
	// Census holds the Exp-1 bounded/effectively-bounded counts.
	Census []CensusResult `json:"census,omitempty"`
}

// Empty reports whether nothing was collected (so callers can skip
// writing a file of empty arrays).
func (r *Report) Empty() bool {
	return len(r.Panels) == 0 && len(r.Table1) == 0 && len(r.Table2) == 0 && len(r.Census) == 0
}

// WriteJSON emits the report as indented JSON (one trailing newline).
func WriteJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
