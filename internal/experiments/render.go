package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// RenderPanel writes a figure panel as an aligned text table: one row per
// x-position with evalDQ time, baseline time (or DNF), and |D_Q| — the
// three series the paper plots in each Figure 5 sub-plot.
func RenderPanel(w io.Writer, p Panel) {
	fmt.Fprintf(w, "Figure %s — %s\n", p.ID, p.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  %s\tevalDQ (ms)\tMySQL-like (ms)\t|D_Q| (tuples)\tevalDQ fetched\tplan bound ≤\tqueries\n", p.XLabel)
	for _, pt := range p.Points {
		base := fmt.Sprintf("%.2f", pt.BaseMS)
		if pt.DNF {
			base = "DNF(>budget)"
		}
		fmt.Fprintf(tw, "  %s\t%.2f\t%s\t%.0f\t%.0f\t%.0f\t%d\n",
			pt.X, pt.EvalMS, base, pt.DQ, pt.EvalTuples, pt.PlanBound, pt.Queries)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// RenderTable1 writes the Table 1 analogue.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1 — longest elapsed time per algorithm (15 queries each)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  Algorithm\t%s\n", strings.Join(datasetNames(rows), "\t"))
	line := func(name string, get func(Table1Row) time.Duration) {
		fmt.Fprintf(tw, "  %s", name)
		for _, r := range rows {
			fmt.Fprintf(tw, "\t%s", fmtDur(get(r)))
		}
		fmt.Fprintln(tw)
	}
	line("BCheck", func(r Table1Row) time.Duration { return r.BCheck })
	line("EBCheck", func(r Table1Row) time.Duration { return r.EBCheck })
	line("findDPh", func(r Table1Row) time.Duration { return r.FindDPh })
	line("QPlan", func(r Table1Row) time.Duration { return r.QPlan })
	tw.Flush()
	fmt.Fprintln(w)
}

func datasetNames(rows []Table1Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Dataset
	}
	return out
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// RenderCensus writes the Exp-1 statistic.
func RenderCensus(w io.Writer, rows []CensusResult) {
	fmt.Fprintln(w, "Exp-1 — boundedness census of the 45-query workload")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  Dataset\tqueries\tbounded\teffectively bounded")
	total, eb := 0, 0
	for _, r := range rows {
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\n", r.Dataset, r.Total, r.Bounded, r.EffectivelyBounded)
		total += r.Total
		eb += r.EffectivelyBounded
	}
	tw.Flush()
	if total > 0 {
		fmt.Fprintf(w, "  overall: %d/%d effectively bounded (%.0f%%; paper: 35/45 = 78%%)\n\n",
			eb, total, 100*float64(eb)/float64(total))
	}
}

// RenderTable2 writes the complexity statement table plus the measured
// scaling curves.
func RenderTable2(w io.Writer, points []Table2Point) {
	fmt.Fprintln(w, "Table 2 — complexity bounds (statement) and measured scaling")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, row := range Table2Statement() {
		fmt.Fprintf(tw, "  %s\t%s\t%s\n", row[0], row[1], row[2])
	}
	tw.Flush()
	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  |Q| (atoms)\tEBCheck (PTIME)\texact MDP (exponential)")
	for _, pt := range points {
		exact := "—"
		if pt.ExactNS > 0 {
			exact = fmtDur(time.Duration(int64(pt.ExactNS)))
		}
		fmt.Fprintf(tw, "  %d\t%s\t%s\n", pt.Size, fmtDur(time.Duration(int64(pt.CheckerNS))), exact)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// CSVPanel renders a panel as CSV for external plotting.
func CSVPanel(w io.Writer, p Panel) {
	fmt.Fprintf(w, "# %s — %s\n", p.ID, p.Title)
	fmt.Fprintf(w, "%s,evaldq_ms,baseline_ms,baseline_dnf,dq_tuples,evaldq_tuples,plan_bound,queries\n", strings.ReplaceAll(p.XLabel, " ", "_"))
	for _, pt := range p.Points {
		fmt.Fprintf(w, "%q,%.3f,%.3f,%v,%.1f,%.1f,%.1f,%d\n",
			pt.X, pt.EvalMS, pt.BaseMS, pt.DNF, pt.DQ, pt.EvalTuples, pt.PlanBound, pt.Queries)
	}
}
