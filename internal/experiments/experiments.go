// Package experiments regenerates every table and figure of the paper's
// Section 6 on the synthetic datasets: Figure 5 (twelve panels: evalDQ vs
// MySQL-like baseline while varying |D|, ‖A‖, #-sel and #-prod on TFACC,
// MOT and TPCH), Table 1 (longest elapsed time of BCheck, EBCheck, findDPh
// and QPlan), Table 2 (the complexity landscape, reproduced as measured
// scaling curves), and the Exp-1 census (fraction of workload queries that
// are effectively bounded).
//
// The experiments report both wall time and tuples accessed. Absolute
// times differ from the paper (in-memory Go vs 2014 MySQL on EC2); the
// shapes are what is reproduced: evalDQ flat in |D|, the baseline growing
// and hitting its budget (the analogue of the paper's 2500 s timeout), the
// gap widening with scale and #-prod, and plans improving with ‖A‖.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"bcq/internal/baseline"
	"bcq/internal/core"
	"bcq/internal/datagen"
	"bcq/internal/exec"
	"bcq/internal/plan"
	"bcq/internal/querygen"
	"bcq/internal/schema"
	"bcq/internal/storage"
)

// Config tunes an experiment run.
type Config struct {
	// Seed feeds the workload generator.
	Seed int64
	// Scales are the |D| points for the vary-|D| panels, as fractions of
	// the full dataset (the paper's 2⁻⁵ … 1).
	Scales []float64
	// FixedScale is the scale used by panels that do not vary |D|.
	FixedScale float64
	// Budget caps baseline tuple accesses — the analogue of the paper's
	// 2500-second timeout; exceeding it reports DNF.
	Budget int64
	// ConstraintCounts are the ‖A‖ points for the vary-‖A‖ panels.
	ConstraintCounts []int
	// Workload overrides the generated 15-query workload (used by tests
	// and the examples; empty means generate from Seed).
	Workload []querygen.WorkloadQuery
	// Parallelism is the evalDQ executor's probe worker-pool width
	// (≤ 1 means sequential). Parallel and sequential runs return
	// byte-identical answers; only wall time changes.
	Parallelism int
}

// DefaultConfig mirrors the paper's parameters at a laptop-friendly size.
func DefaultConfig() Config {
	return Config{
		Seed:             querygen.Seed,
		Scales:           []float64{1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1},
		FixedScale:       1,
		Budget:           2_000_000,
		ConstraintCounts: []int{12, 14, 16, 18, 20},
	}
}

// QuickConfig is a reduced configuration for tests.
func QuickConfig() Config {
	return Config{
		Seed:             querygen.Seed,
		Scales:           []float64{1.0 / 32, 1.0 / 8},
		FixedScale:       1.0 / 8,
		Budget:           300_000,
		ConstraintCounts: []int{12, 16, 20},
	}
}

// Seed re-exported for convenience.
const Seed = querygen.Seed

// workloadFor returns the configured workload, generating the standard
// 15-query one when none is supplied.
func workloadFor(ds *datagen.Dataset, cfg Config) ([]querygen.WorkloadQuery, error) {
	if len(cfg.Workload) > 0 {
		return cfg.Workload, nil
	}
	return querygen.Workload(ds, cfg.Seed)
}

// Point is one x-position of a figure panel.
type Point struct {
	// X labels the position (a scale factor, ‖A‖, #-sel or #-prod).
	X string
	// EvalMS is evalDQ's mean wall time in milliseconds; EvalTuples its
	// mean tuples fetched; DQ the mean |D_Q|.
	EvalMS     float64
	EvalTuples float64
	DQ         float64
	// BaseMS is the baseline's mean wall time; DNF is set when it
	// exceeded the budget (then BaseMS covers only finished queries, and
	// BaseTuples the work done before giving up).
	BaseMS     float64
	BaseTuples float64
	DNF        bool
	// PlanBound is the mean worst-case fetch bound of the plans (the M
	// such that evalDQ touches ≤ M tuples on any database satisfying the
	// restricted schema); the vary-‖A‖ panels show it shrinking as
	// constraints are added (QPlan finds better proofs).
	PlanBound float64
	// Queries is the number of queries aggregated into this point.
	Queries int
}

// Panel is one sub-figure of Figure 5.
type Panel struct {
	ID      string // e.g. "5(a)"
	Title   string
	XLabel  string
	Dataset string
	Points  []Point
}

// prepared bundles a workload query with its analysis and plan.
type prepared struct {
	wq querygen.WorkloadQuery
	an *core.Analysis
	pl *plan.Plan
}

// prepare plans every effectively bounded workload query under the given
// access schema, skipping queries that are not effectively bounded under
// it (the paper's panels aggregate effectively bounded queries only).
func prepare(ds *datagen.Dataset, acc *schema.AccessSchema, ws []querygen.WorkloadQuery) ([]prepared, error) {
	var out []prepared
	for _, w := range ws {
		an, err := core.NewAnalysis(ds.Catalog, w.Query, acc)
		if err != nil {
			return nil, err
		}
		if !an.EBCheck().EffectivelyBounded {
			continue
		}
		p, err := plan.QPlan(an)
		if err != nil {
			return nil, err
		}
		out = append(out, prepared{wq: w, an: an, pl: p})
	}
	return out, nil
}

// runPoint executes the prepared queries against one database and
// aggregates a Point. Baselines run in the paper's MySQL mode
// (ConstIndexOnly index-nested-loop) under the budget.
func runPoint(label string, ps []prepared, db *storage.Database, cfg Config) (Point, error) {
	budget := cfg.Budget
	exe := exec.New(cfg.Parallelism)
	pt := Point{X: label, Queries: len(ps)}
	var evalMS, evalTuples, dqSum, boundSum float64
	var baseMS, baseTuples float64
	baseFinished := 0
	for _, p := range ps {
		if !p.pl.FetchBound.IsUnbounded() {
			boundSum += float64(p.pl.FetchBound.Int64())
		}
		start := time.Now()
		res, err := exe.Run(p.pl, db)
		if err != nil {
			return pt, fmt.Errorf("evalDQ on %s: %w", p.wq.Query.Name, err)
		}
		evalMS += float64(time.Since(start).Microseconds()) / 1000
		evalTuples += float64(res.Stats.TuplesFetched)
		dqSum += float64(res.DQSize)

		start = time.Now()
		bres, err := baseline.IndexLoop(p.an.Closure, db, baseline.Options{
			Budget:         budget,
			ConstIndexOnly: true,
		})
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		switch {
		case err == nil:
			baseMS += elapsed
			baseTuples += float64(bres.Stats.Total())
			baseFinished++
			// Cross-check: the two evaluators must agree.
			if len(bres.Tuples) != len(res.Tuples) {
				return pt, fmt.Errorf("%s: evalDQ %d tuples, baseline %d",
					p.wq.Query.Name, len(res.Tuples), len(bres.Tuples))
			}
		default:
			pt.DNF = true
			baseTuples += float64(budget)
		}
	}
	n := float64(len(ps))
	if n > 0 {
		pt.EvalMS = evalMS / n
		pt.EvalTuples = evalTuples / n
		pt.DQ = dqSum / n
		pt.BaseTuples = baseTuples / n
		pt.PlanBound = boundSum / n
	}
	if baseFinished > 0 {
		pt.BaseMS = baseMS / float64(baseFinished)
	}
	return pt, nil
}

// Fig5VaryD reproduces panels 5(a)/(e)/(i): evalDQ vs baseline as |D|
// grows, on the effectively bounded workload queries.
func Fig5VaryD(ds *datagen.Dataset, cfg Config) (Panel, error) {
	panel := Panel{
		ID:      "5-varyD",
		Title:   ds.Name + ": varying |D|",
		XLabel:  "scale factor",
		Dataset: ds.Name,
	}
	ws, err := workloadFor(ds, cfg)
	if err != nil {
		return panel, err
	}
	ps, err := prepare(ds, ds.Access, ws)
	if err != nil {
		return panel, err
	}
	for _, sf := range cfg.Scales {
		db, err := ds.Build(sf)
		if err != nil {
			return panel, err
		}
		pt, err := runPoint(fmt.Sprintf("%g", sf), ps, db, cfg)
		if err != nil {
			return panel, err
		}
		pt.X = fmt.Sprintf("%g (|D|=%d)", sf, db.NumTuples())
		panel.Points = append(panel.Points, pt)
	}
	return panel, nil
}

// ConstraintSchedule orders the dataset's access constraints for the
// vary-‖A‖ panels: a minimal prefix (the "base") keeps the workload's
// effectively bounded queries effectively bounded, and further constraints
// arrive cheapest-last, so every prefix extension can only improve plans —
// the paper's observation that "more access constraints help QPlan get
// better query plans". The base is deliberately biased toward *expensive*
// constraints (the greedy pass below drops cheap ones first), so the small
// ‖A‖ points genuinely produce worse plans. It returns the schedule and
// the minimal prefix length.
func ConstraintSchedule(ds *datagen.Dataset, ws []querygen.WorkloadQuery) ([]schema.AccessConstraint, int, error) {
	// Which queries must stay effectively bounded?
	var targets []*core.Analysis
	for _, w := range ws {
		an, err := core.NewAnalysis(ds.Catalog, w.Query, ds.Access)
		if err != nil {
			return nil, 0, err
		}
		if an.EBCheck().EffectivelyBounded {
			targets = append(targets, an)
		}
	}
	allEB := func(acs []schema.AccessConstraint) (bool, error) {
		sub, err := schema.NewAccessSchema(acs...)
		if err != nil {
			return false, err
		}
		for _, t := range targets {
			an, err := core.NewAnalysis(ds.Catalog, t.Query(), sub)
			if err != nil {
				return false, err
			}
			if !an.EBCheck().EffectivelyBounded {
				return false, nil
			}
		}
		return true, nil
	}

	// Greedy minimization, cheapest candidates dropped first.
	base := append([]schema.AccessConstraint(nil), ds.Access.Constraints()...)
	order := append([]schema.AccessConstraint(nil), base...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].N < order[j].N })
	for _, drop := range order {
		var tentative []schema.AccessConstraint
		for _, ac := range base {
			if ac.Key() != drop.Key() {
				tentative = append(tentative, ac)
			}
		}
		ok, err := allEB(tentative)
		if err != nil {
			return nil, 0, err
		}
		if ok {
			base = tentative
		}
	}

	inBase := map[string]bool{}
	for _, ac := range base {
		inBase[ac.Key()] = true
	}
	var rest []schema.AccessConstraint
	for _, ac := range ds.Access.Constraints() {
		if !inBase[ac.Key()] {
			rest = append(rest, ac)
		}
	}
	// Cheaper constraints last: every prefix extension can only help.
	sort.SliceStable(rest, func(i, j int) bool { return rest[i].N > rest[j].N })
	return append(base, rest...), len(base), nil
}

// Fig5VaryA reproduces panels 5(b)/(f)/(j): plan quality as ‖A‖ grows.
func Fig5VaryA(ds *datagen.Dataset, cfg Config) (Panel, error) {
	panel := Panel{
		ID:      "5-varyA",
		Title:   ds.Name + ": varying ‖A‖",
		XLabel:  "‖A‖",
		Dataset: ds.Name,
	}
	ws, err := workloadFor(ds, cfg)
	if err != nil {
		return panel, err
	}
	schedule, minLen, err := ConstraintSchedule(ds, ws)
	if err != nil {
		return panel, err
	}
	db, err := ds.Build(cfg.FixedScale)
	if err != nil {
		return panel, err
	}
	// The x-axis spans from the minimal EB-preserving prefix to the full
	// schema (where the cheapest redundant constraints live), with as many
	// points as the configuration asks for. (The paper's axis is 12–20 of
	// 84; our schedules put the plan-improving constraints at the end, so
	// a fixed 12–20 window would show nothing.)
	lo := minLen
	if lo < cfg.ConstraintCounts[0] {
		lo = cfg.ConstraintCounts[0]
	}
	hi := len(schedule)
	points := len(cfg.ConstraintCounts)
	for i := 0; i < points; i++ {
		n := lo + (hi-lo)*i/(points-1)
		if n < minLen {
			n = minLen
		}
		if n > len(schedule) {
			n = len(schedule)
		}
		sub, err := schema.NewAccessSchema(schedule[:n]...)
		if err != nil {
			return panel, err
		}
		// Index everything in the restricted schema (indexes for the full
		// schema are a superset; rebuild against the restriction so the
		// executor cannot cheat).
		if err := db.BuildIndexes(sub); err != nil {
			return panel, err
		}
		ps, err := prepare(ds, sub, ws)
		if err != nil {
			return panel, err
		}
		pt, err := runPoint(fmt.Sprintf("%d", n), ps, db, cfg)
		if err != nil {
			return panel, err
		}
		panel.Points = append(panel.Points, pt)
	}
	return panel, nil
}

// Fig5VarySel reproduces panels 5(c)/(g)/(k): grouping the effectively
// bounded queries by #-sel.
func Fig5VarySel(ds *datagen.Dataset, cfg Config) (Panel, error) {
	return fig5GroupBy(ds, cfg, "#-sel", func(p prepared) int { return p.wq.NumSel })
}

// Fig5VaryProd reproduces panels 5(d)/(h)/(l): grouping by #-prod.
func Fig5VaryProd(ds *datagen.Dataset, cfg Config) (Panel, error) {
	return fig5GroupBy(ds, cfg, "#-prod", func(p prepared) int { return p.wq.NumProd })
}

func fig5GroupBy(ds *datagen.Dataset, cfg Config, what string, key func(prepared) int) (Panel, error) {
	panel := Panel{
		ID:      "5-vary" + what,
		Title:   ds.Name + ": varying " + what,
		XLabel:  what,
		Dataset: ds.Name,
	}
	ws, err := workloadFor(ds, cfg)
	if err != nil {
		return panel, err
	}
	ps, err := prepare(ds, ds.Access, ws)
	if err != nil {
		return panel, err
	}
	groups := map[int][]prepared{}
	var keys []int
	for _, p := range ps {
		k := key(p)
		if _, seen := groups[k]; !seen {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], p)
	}
	sort.Ints(keys)
	db, err := ds.Build(cfg.FixedScale)
	if err != nil {
		return panel, err
	}
	for _, k := range keys {
		pt, err := runPoint(fmt.Sprintf("%d", k), groups[k], db, cfg)
		if err != nil {
			return panel, err
		}
		panel.Points = append(panel.Points, pt)
	}
	return panel, nil
}
