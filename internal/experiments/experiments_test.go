package experiments

import (
	"bytes"
	"strings"
	"testing"

	"bcq/internal/datagen"
	"bcq/internal/querygen"
	"bcq/internal/spc"
)

// socialWorkload hand-builds the paper's Q0 (Example 1) over the Social
// dataset's integer entity ids; the generated workload machinery needs
// bounded-domain attributes Social's three tiny relations do not have.
func socialWorkload(t *testing.T, ds *datagen.Dataset) []querygen.WorkloadQuery {
	t.Helper()
	q := spc.MustParse(`
		query Q0:
		select t1.photo_id
		from in_album as t1, friends as t2, tagging as t3
		where t1.album_id = 3 and t2.user_id = 5
		  and t1.photo_id = t3.photo_id
		  and t3.tagger_id = t2.friend_id and t3.taggee_id = t2.user_id`, ds.Catalog)
	return []querygen.WorkloadQuery{{Query: q, NumSel: q.NumSel(), NumProd: q.NumProd(), WantEB: true}}
}

func TestFig5VaryDShape(t *testing.T) {
	// The defining property of the whole paper: evalDQ's data access is
	// flat in |D| while the baseline's work grows.
	ds := datagen.Social()
	cfg := QuickConfig()
	cfg.Scales = []float64{1.0 / 32, 1.0 / 8, 1.0 / 2}
	cfg.Workload = socialWorkload(t, ds)
	panel, err := Fig5VaryD(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Points) != 3 {
		t.Fatalf("points = %d", len(panel.Points))
	}
	first, last := panel.Points[0], panel.Points[len(panel.Points)-1]
	if first.EvalTuples != last.EvalTuples {
		t.Errorf("evalDQ tuples varied with |D|: %v -> %v", first.EvalTuples, last.EvalTuples)
	}
	if first.DQ != last.DQ {
		t.Errorf("|D_Q| varied with |D|: %v -> %v", first.DQ, last.DQ)
	}
	if !(last.BaseTuples > first.BaseTuples*2) {
		t.Errorf("baseline work did not grow: %v -> %v", first.BaseTuples, last.BaseTuples)
	}
}

func TestFig5VaryDOnWorkloadDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("builds several databases")
	}
	cfg := QuickConfig()
	panel, err := Fig5VaryD(datagen.MOT(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range panel.Points {
		if pt.Queries == 0 {
			t.Fatalf("no effectively bounded queries aggregated: %+v", pt)
		}
	}
	first, last := panel.Points[0], panel.Points[len(panel.Points)-1]
	if first.EvalTuples != last.EvalTuples {
		t.Errorf("evalDQ tuples varied with |D|: %v -> %v", first.EvalTuples, last.EvalTuples)
	}
}

func TestFig5VaryAImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("builds several databases")
	}
	cfg := QuickConfig()
	panel, err := Fig5VaryA(datagen.TFACC(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Points) < 2 {
		t.Fatalf("points = %d", len(panel.Points))
	}
	first, last := panel.Points[0], panel.Points[len(panel.Points)-1]
	if last.DQ > first.DQ {
		t.Errorf("more constraints worsened |D_Q|: %v -> %v", first.DQ, last.DQ)
	}
}

func TestFig5GroupPanels(t *testing.T) {
	cfg := QuickConfig()
	selPanel, err := Fig5VarySel(datagen.MOT(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(selPanel.Points) == 0 {
		t.Fatal("no #-sel groups")
	}
	prodPanel, err := Fig5VaryProd(datagen.MOT(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(prodPanel.Points) == 0 {
		t.Fatal("no #-prod groups")
	}
	// #-prod groups must be sorted ascending.
	for i := 1; i < len(prodPanel.Points); i++ {
		if prodPanel.Points[i-1].X >= prodPanel.Points[i].X {
			t.Errorf("points out of order: %v then %v", prodPanel.Points[i-1].X, prodPanel.Points[i].X)
		}
	}
}

func TestTable1AllAlgorithmsMeasured(t *testing.T) {
	row, err := Table1(datagen.MOT(), QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.Queries != 15 {
		t.Errorf("queries = %d", row.Queries)
	}
	if row.BCheck == 0 || row.EBCheck == 0 || row.FindDPh == 0 || row.QPlan == 0 {
		t.Errorf("missing measurements: %+v", row)
	}
	// The paper's headline: all four under 2.1 seconds. Ours should be
	// far under; a generous sanity ceiling catches pathologies.
	if row.QPlan.Seconds() > 2.1 {
		t.Errorf("QPlan took %v (> the paper's 2.1 s!)", row.QPlan)
	}
}

func TestCensusMatchesWorkloadIntent(t *testing.T) {
	cfg := QuickConfig()
	totalEB := 0
	for _, ds := range []*datagen.Dataset{datagen.TFACC(), datagen.MOT(), datagen.TPCH()} {
		c, err := Census(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if c.Total != 15 {
			t.Errorf("%s: %d queries", ds.Name, c.Total)
		}
		if c.Bounded < c.EffectivelyBounded {
			t.Errorf("%s: bounded (%d) < effectively bounded (%d)?", ds.Name, c.Bounded, c.EffectivelyBounded)
		}
		totalEB += c.EffectivelyBounded
	}
	if totalEB != 33 {
		t.Errorf("workload census = %d/45 effectively bounded, want 33 (paper: 35)", totalEB)
	}
}

func TestTable2ScalingShapes(t *testing.T) {
	points, err := Table2Scaling([]int{2, 4, 6, 8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// The checker must stay fast while the exact solver grows much
	// faster; compare growth factors loosely (timing noise!).
	firstChecker, lastChecker := points[0].CheckerNS, points[len(points)-1].CheckerNS
	if lastChecker > firstChecker*1000 {
		t.Errorf("checker blew up: %v -> %v ns", firstChecker, lastChecker)
	}
	if points[len(points)-1].ExactNS == 0 {
		t.Error("exact solver skipped within its limit")
	}
}

func TestRenderers(t *testing.T) {
	ds := datagen.Social()
	cfg := QuickConfig()
	cfg.Scales = []float64{1.0 / 32}
	cfg.Workload = socialWorkload(t, ds)
	panel, err := Fig5VaryD(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderPanel(&buf, panel)
	if !strings.Contains(buf.String(), "evalDQ") {
		t.Error("panel render missing series")
	}
	buf.Reset()
	CSVPanel(&buf, panel)
	if !strings.Contains(buf.String(), "evaldq_ms") {
		t.Error("csv render missing header")
	}
	row, err := Table1(ds, cfg)
	if err == nil {
		buf.Reset()
		RenderTable1(&buf, []Table1Row{row})
		if !strings.Contains(buf.String(), "BCheck") {
			t.Error("table1 render missing rows")
		}
	}
	pts, err := Table2Scaling([]int{2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	RenderTable2(&buf, pts)
	if !strings.Contains(buf.String(), "NPO-complete") {
		t.Error("table2 render missing statement")
	}
	buf.Reset()
	RenderCensus(&buf, []CensusResult{{Dataset: "X", Total: 15, Bounded: 14, EffectivelyBounded: 11}})
	if !strings.Contains(buf.String(), "Exp-1") {
		t.Error("census render")
	}
}
