package experiments

import (
	"fmt"
	"time"

	"bcq/internal/core"
	"bcq/internal/datagen"
	"bcq/internal/plan"
	"bcq/internal/schema"
	"bcq/internal/spc"
)

// Table1Row is one dataset column of the paper's Table 1: the longest
// elapsed time of each algorithm over the dataset's 15 workload queries.
type Table1Row struct {
	Dataset string
	BCheck  time.Duration
	EBCheck time.Duration
	FindDPh time.Duration
	QPlan   time.Duration
	Queries int
}

// Table1 measures the four algorithms on every workload query of a
// dataset and reports the per-algorithm maximum (the paper's Table 1
// reports the longest elapsed time per dataset).
func Table1(ds *datagen.Dataset, cfg Config) (Table1Row, error) {
	row := Table1Row{Dataset: ds.Name}
	ws, err := workloadFor(ds, cfg)
	if err != nil {
		return row, err
	}
	row.Queries = len(ws)
	maxDur := func(cur *time.Duration, d time.Duration) {
		if d > *cur {
			*cur = d
		}
	}
	for _, w := range ws {
		an, err := core.NewAnalysis(ds.Catalog, w.Query, ds.Access)
		if err != nil {
			return row, err
		}
		start := time.Now()
		an.BCheck()
		maxDur(&row.BCheck, time.Since(start))

		start = time.Now()
		eb := an.EBCheck()
		maxDur(&row.EBCheck, time.Since(start))

		start = time.Now()
		an.FindDPh(0.9)
		maxDur(&row.FindDPh, time.Since(start))

		if eb.EffectivelyBounded {
			start = time.Now()
			if _, err := plan.QPlan(an); err != nil {
				return row, err
			}
			maxDur(&row.QPlan, time.Since(start))
		}
	}
	return row, nil
}

// CensusResult is Exp-1's headline statistic: how many workload queries
// are (effectively) bounded.
type CensusResult struct {
	Dataset            string
	Total              int
	Bounded            int
	EffectivelyBounded int
}

// Census runs BCheck and EBCheck over the workload.
func Census(ds *datagen.Dataset, cfg Config) (CensusResult, error) {
	res := CensusResult{Dataset: ds.Name}
	ws, err := workloadFor(ds, cfg)
	if err != nil {
		return res, err
	}
	for _, w := range ws {
		an, err := core.NewAnalysis(ds.Catalog, w.Query, ds.Access)
		if err != nil {
			return res, err
		}
		res.Total++
		if an.BCheck().Bounded {
			res.Bounded++
		}
		if an.EBCheck().EffectivelyBounded {
			res.EffectivelyBounded++
		}
	}
	return res, nil
}

// Table2Point is one measurement of the complexity-scaling experiment.
type Table2Point struct {
	// Size is the driven input size (number of query atoms for the PTIME
	// checkers; number of candidate parameter classes for the exact
	// solvers).
	Size int
	// CheckerNS is the mean EBCheck time; ExactNS the exact-solver time
	// (0 when skipped).
	CheckerNS float64
	ExactNS   float64
}

// Table2Scaling reproduces Table 2 empirically: the PTIME problems
// (Bnd, EBnd via BCheck/EBCheck) scale polynomially with the query size,
// while the exact solvers for the NP-complete problems (DP via ExactMinDP)
// blow up exponentially in the number of candidate parameters. The
// generated query family is a chain join r1 ⋈ r2 ⋈ … with per-atom
// constraints, sized by the atom count.
func Table2Scaling(sizes []int, exactLimit int) ([]Table2Point, error) {
	var out []Table2Point
	for _, n := range sizes {
		cat, acc, q, err := chainInstance(n)
		if err != nil {
			return nil, err
		}
		an, err := core.NewAnalysis(cat, q, acc)
		if err != nil {
			return nil, err
		}
		pt := Table2Point{Size: n}
		const reps = 20
		start := time.Now()
		for i := 0; i < reps; i++ {
			an.EBCheck()
		}
		pt.CheckerNS = float64(time.Since(start).Nanoseconds()) / reps

		if n <= exactLimit {
			start = time.Now()
			if _, err := an.ExactMinDP(0.99, 64); err != nil {
				return nil, err
			}
			pt.ExactNS = float64(time.Since(start).Nanoseconds())
		}
		out = append(out, pt)
	}
	return out, nil
}

// chainInstance builds a size-parameterized instance: n relations
// r1(k, ref, d, p), a chain query joining r_i.ref = r_{i+1}.k with a
// parameter slot on every atom's key, and per-relation constraints. No
// constants are pinned, so the exact dominating-parameter search faces n
// candidate classes.
func chainInstance(n int) (*schema.Catalog, *schema.AccessSchema, *spc.Query, error) {
	var rels []*schema.Relation
	var acs []schema.AccessConstraint
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%d", i)
		rels = append(rels, schema.MustRelation(name, "k", "ref", "d", "p"))
		acs = append(acs,
			schema.MustAccessConstraint(name, []string{"k"}, []string{"ref", "d"}, 4),
			schema.MustAccessConstraint(name, nil, []string{"d"}, 10),
		)
	}
	cat, err := schema.NewCatalog(rels...)
	if err != nil {
		return nil, nil, nil, err
	}
	acc, err := schema.NewAccessSchema(acs...)
	if err != nil {
		return nil, nil, nil, err
	}
	q := &spc.Query{Name: fmt.Sprintf("chain%d", n)}
	for i := 0; i < n; i++ {
		q.Atoms = append(q.Atoms, spc.Atom{Rel: fmt.Sprintf("r%d", i), Alias: fmt.Sprintf("t%d", i)})
		q.Placeholders = append(q.Placeholders, spc.AttrRef{Atom: i, Attr: "k"})
		if i > 0 {
			q.EqAttrs = append(q.EqAttrs, spc.EqAttr{
				L: spc.AttrRef{Atom: i - 1, Attr: "ref"},
				R: spc.AttrRef{Atom: i, Attr: "k"},
			})
		}
	}
	q.Output = append(q.Output, spc.OutputCol{Ref: spc.AttrRef{Atom: n - 1, Attr: "d"}})
	if err := q.Validate(cat); err != nil {
		return nil, nil, nil, err
	}
	return cat, acc, q, nil
}

// Table2Statement returns the complexity table itself (the paper's
// Table 2), for rendering next to the measured curves.
func Table2Statement() [][3]string {
	return [][3]string{
		{"problem", "M not predefined", "M part of the input"},
		{"Bnd(Q,A)", "O(|Q|(|A|+|Q|)) — Thm 5", "NP-complete — Thm 8"},
		{"EBnd(Q,A)", "O(|Q|(|A|+|Q|)) — Thm 6", "NP-complete — Thm 8"},
		{"DP(Q,A)", "NP-complete — Thm 7", "NP-complete"},
		{"MDP(Q,A)", "NPO-complete — Thm 7", "NPO-complete"},
	}
}
