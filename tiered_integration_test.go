// End-to-end acceptance for tiered planning: an engine in PlanModeTiered
// answers the cold prepare from the greedy tier, and after the
// background upgrade installs the optimized tier, executions fetch
// exactly what a directly-built optimized plan fetches — the tiered
// engine gives up nothing versus eager optimization once warm.
package bcq

import (
	"fmt"
	"os"
	"testing"
)

func TestTieredEngineReachesOptimizedFetchCounts(t *testing.T) {
	cat, acc, db := ordersScene(t)
	if err := db.EnsureIndexes(acc); err != nil {
		t.Fatal(err)
	}
	cs := db.CardStats()
	q := readQuery(t, "testdata/q2.sql", cat)

	// Ground truth: the naive and optimized fetch volumes on Q2. The
	// optimized plan probes the tiny tier groups and fetches an order of
	// magnitude fewer tuples (12 vs 300 on this scene).
	a, err := Analyze(cat, q, acc)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := a.Plan()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := a.OptimizedPlan(&cs)
	if err != nil {
		t.Fatal(err)
	}
	resN, err := Execute(naive, db)
	if err != nil {
		t.Fatal(err)
	}
	resO, err := Execute(opt, db)
	if err != nil {
		t.Fatal(err)
	}
	if resO.Stats.TuplesFetched >= resN.Stats.TuplesFetched {
		t.Fatalf("scene no longer discriminates: optimized fetched %d, naive %d", resO.Stats.TuplesFetched, resN.Stats.TuplesFetched)
	}

	eng, err := NewEngine(cat, acc, db, EngineOptions{PlanMode: PlanModeTiered})
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("testdata/q2.sql")
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.Prepare(string(src))
	if err != nil {
		t.Fatal(err)
	}
	// The cold execution may run on either tier depending on how fast the
	// background worker finishes; whatever it lands on, the answers are
	// the answers.
	cold, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}

	eng.DrainUpgrades()
	if got := p.PlanTier(); got != TierOptimized {
		t.Fatalf("post-upgrade tier = %q, want optimized", got)
	}
	if st := eng.Stats(); st.Upgrades != 1 || st.UpgradesPending != 0 {
		t.Fatalf("stats = %d upgrades, %d pending, want 1 installed and none pending", st.Upgrades, st.UpgradesPending)
	}

	warm, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v|%v", cold.Cols, cold.Tuples) != fmt.Sprintf("%v|%v", warm.Cols, warm.Tuples) {
		t.Fatalf("answers changed across the upgrade:\n cold: %v\n warm: %v", cold.Tuples, warm.Tuples)
	}
	// The installed plan fetches exactly what eager optimization fetches.
	if warm.Stats.TuplesFetched != resO.Stats.TuplesFetched {
		t.Errorf("post-upgrade execution fetched %d tuples, direct optimized plan fetched %d",
			warm.Stats.TuplesFetched, resO.Stats.TuplesFetched)
	}
	t.Logf("q2: naive %d, optimized %d, tiered-after-upgrade %d tuples fetched",
		resN.Stats.TuplesFetched, resO.Stats.TuplesFetched, warm.Stats.TuplesFetched)
}
