module bcq

go 1.24
