// Prepared-query engine: the paper's Example 1(2) parameterized template
// served the way a platform would serve it.
//
// The template "photos in album ? in which user ? was tagged by a friend"
// is not effectively bounded as written — but every instantiation of its
// two slots is. The engine plans the template once (against opaque
// sentinel constants), caches the plan under the query's fingerprint, and
// binds the arguments per request, so serving a million requests costs a
// million bounded executions and exactly one analysis.
//
// Run with: go run ./examples/prepared
package main

import (
	"fmt"
	"log"

	"bcq"
	"bcq/internal/datagen"
)

const template = `
select t1.photo_id
from in_album as t1, friends as t2, tagging as t3
where t1.album_id = ?
  and t2.user_id = ?
  and t1.photo_id = t3.photo_id
  and t3.tagger_id = t2.friend_id
  and t3.taggee_id = t2.user_id
`

func main() {
	ds := datagen.Social()
	db := ds.MustBuild(0.5)
	fmt.Printf("social network: |D| = %d tuples\n\n", db.NumTuples())

	eng, err := bcq.NewEngine(ds.Catalog, ds.Access, db, bcq.EngineOptions{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}

	prep, err := eng.Prepare(template)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared: %d parameter slots, fetch bound %s\n\n", prep.NumParams(), prep.FetchBound())

	// Serve a burst of requests over different albums and users.
	requests := 0
	answers := 0
	var fetched int64
	for album := int64(0); album < 8; album++ {
		for user := int64(0); user < 8; user++ {
			res, err := prep.Exec(bcq.Int(album), bcq.Int(user))
			if err != nil {
				log.Fatal(err)
			}
			requests++
			answers += len(res.Tuples)
			fetched += res.Stats.TuplesFetched
		}
	}
	fmt.Printf("served %d requests: %d answers, %d tuples fetched (mean %.1f per request)\n",
		requests, answers, fetched, float64(fetched)/float64(requests))

	// Re-preparing the same shape — even with different whitespace or a
	// query name — hits the plan cache.
	if _, err := eng.Prepare("query Hot:" + template); err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("engine stats: %d prepares, %d planned, %d cache hits, %d executions\n",
		st.Prepares, st.CacheMisses, st.CacheHits, st.Execs)
}
