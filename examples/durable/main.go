// Durable: surviving a crash without giving up a single committed write.
//
// The sharded example's store lives only in memory — restart the process
// and the data is gone. This walkthrough makes the same social store
// durable and then kills it mid-write:
//
//   - every shard keeps a write-ahead log: a batch is fsynced to the WAL
//     of each shard it touches *before* its snapshot publishes, so "the
//     client saw it commit" implies "it is on disk";
//   - a checkpoint (Close, or live compaction) seals the store into
//     segment files and truncates the WALs; recovery loads the newest
//     valid checkpoint and replays only the WAL tail;
//   - a torn final record — the half-written frame a crash mid-append
//     leaves behind — fails its CRC and is dropped, never half-applied.
//
// The crash here is injected deterministically with the WAL's fail-point
// hook (the same one the crash-recovery property tests use): the next
// append writes only a prefix of its frame and skips the fsync, exactly
// what power loss mid-write leaves behind.
//
// Run with: go run ./examples/durable
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"bcq"
	"bcq/internal/wal"
)

const ddl = `
relation in_album(photo_id, album_id)
relation friends(user_id, friend_id)

constraint in_album: (album_id) -> (photo_id, 1000)
constraint friends: (user_id) -> (friend_id, 5000)
`

const q0 = `
query Q0:
select f.friend_id
from friends as f
where f.user_id = ?
`

func tup(vals ...string) bcq.Tuple {
	t := make(bcq.Tuple, len(vals))
	for i, v := range vals {
		t[i] = bcq.Str(v)
	}
	return t
}

func main() {
	cat, acc, err := bcq.ParseDDL(ddl)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "bcq-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Seed a durable store: ShardOptions.Dir writes each shard's base as
	// an epoch-0 checkpoint segment and opens its WAL; the manifest
	// records the shard count and partition placements.
	db := bcq.NewDatabase(cat)
	if err := db.Insert("in_album", tup("p1", "a0")); err != nil {
		log.Fatal(err)
	}
	ss, err := bcq.NewShardedDatabase(db, acc, bcq.ShardOptions{Shards: 2, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeded durable store in %s (P = %d)\n", dir, ss.NumShards())

	// Two batches commit normally: WAL append + fsync on every touched
	// shard, then the snapshot publishes.
	for _, batch := range [][]bcq.LiveOp{
		{bcq.InsertOp("friends", tup("u0", "u1")), bcq.InsertOp("in_album", tup("p2", "a0"))},
		{bcq.InsertOp("friends", tup("u0", "u2"))},
	} {
		if err := ss.Apply(batch); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("committed 2 batches (3 ops), |D| = %d\n", ss.NumTuples())

	// Crash mid-write: arm every shard's fail point so the next append
	// leaves a 7-byte torn frame and no fsync, then abandon the store
	// without Close — the process is "dead".
	for s := 0; s < ss.NumShards(); s++ {
		ss.Shard(s).WAL().SetFailPoint(1, 7)
	}
	err = ss.Apply([]bcq.LiveOp{bcq.InsertOp("friends", tup("u9", "u8"))})
	if !errors.Is(err, wal.ErrInjectedCrash) {
		log.Fatalf("expected the injected crash, got %v", err)
	}
	fmt.Printf("crashed mid-append: %v\n\n", err)

	// Recovery: each shard loads its checkpoint, drops the torn tail
	// record (it fails its CRC), and replays the committed WAL tail
	// through the normal admission path.
	re, rec, err := bcq.OpenShardedDatabase(dir, cat, acc, bcq.ShardOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d WAL ops replayed, %d torn records dropped, |D| = %d\n",
		rec.ReplayedOps(), rec.TruncatedRecords(), re.NumTuples())

	eng, err := bcq.NewShardedEngine(re, bcq.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	prep, err := eng.Prepare(q0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prep.Exec(bcq.Str("u0"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q0(u0) = %v — every committed write survived; the torn one never half-applied\n\n", res.Tuples)

	// A clean shutdown checkpoints: Close seals each shard's state into a
	// segment and truncates its WAL, so the next open replays nothing.
	if err := re.Close(); err != nil {
		log.Fatal(err)
	}
	re2, rec2, err := bcq.OpenShardedDatabase(dir, cat, acc, bcq.ShardOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer re2.Close()
	fmt.Printf("clean restart: %d WAL ops replayed (checkpoint carries everything), |D| = %d\n",
		rec2.ReplayedOps(), re2.NumTuples())
}
