// Sharded: scaling the store out without giving up exactness.
//
// The streaming example's social network outgrows one writer: tags,
// albums and friendships arrive from many fronts at once. Access
// constraints hand the store a free shard key — every bounded probe
// carries a concrete X-binding, so hash-partitioning each relation on
// its constraint's X routes every probe to exactly one shard:
//
//   - in_album is partitioned by album_id, friends by user_id, tagging
//     by (photo_id, taggee_id): every index group lives whole on one
//     shard, so scatter-gather answers are byte-identical to a single
//     store — same tuples, same access counts, same |D_Q|;
//   - each shard is its own live store: admission checks, copy-on-write
//     index maintenance and snapshot publication run under independent
//     per-shard writer locks, so ingest scales with the shard count;
//   - a reader pins one epoch vector atomically and evaluates against
//     that consistent cut, unaffected by concurrent commits anywhere.
//
// Run with: go run ./examples/sharded
package main

import (
	"fmt"
	"log"

	"bcq"
)

const ddl = `
relation in_album(photo_id, album_id)
relation friends(user_id, friend_id)
relation tagging(photo_id, tagger_id, taggee_id)

constraint in_album: (album_id) -> (photo_id, 1000)
constraint friends: (user_id) -> (friend_id, 5000)
constraint tagging: (photo_id, taggee_id) -> (tagger_id, 1)
`

const q0 = `
query Q0:
select t1.photo_id
from in_album as t1, friends as t2, tagging as t3
where t1.album_id = ? and t2.user_id = ?
  and t1.photo_id = t3.photo_id
  and t3.tagger_id = t2.friend_id
  and t3.taggee_id = t2.user_id
`

func str(s string) bcq.Value { return bcq.Str(s) }

func tup(vals ...string) bcq.Tuple {
	t := make(bcq.Tuple, len(vals))
	for i, v := range vals {
		t[i] = str(v)
	}
	return t
}

func main() {
	cat, acc, err := bcq.ParseDDL(ddl)
	if err != nil {
		log.Fatal(err)
	}
	db := bcq.NewDatabase(cat)
	seed := [][3]string{
		{"in_album", "p1", "a0"}, {"in_album", "p2", "a0"}, {"in_album", "p3", "a1"},
		{"friends", "u0", "u1"}, {"friends", "u0", "u2"}, {"friends", "u1", "u2"},
	}
	for _, s := range seed {
		if err := db.Insert(s[0], tup(s[1], s[2])); err != nil {
			log.Fatal(err)
		}
	}
	for _, s := range [][4]string{
		{"tagging", "p1", "u1", "u0"}, {"tagging", "p2", "u2", "u0"}, {"tagging", "p3", "u2", "u1"},
	} {
		if err := db.Insert(s[0], tup(s[1], s[2], s[3])); err != nil {
			log.Fatal(err)
		}
	}

	// Partition into 4 shards; the shard keys come from the constraints.
	sharded, err := bcq.NewShardedDatabase(db, acc, bcq.ShardOptions{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("placements:")
	for _, rs := range cat.Relations() {
		pl, err := sharded.PlacementOf(rs.Name())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %s\n", rs.Name(), pl)
	}

	eng, err := bcq.NewShardedEngine(sharded, bcq.EngineOptions{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}
	prep, err := eng.Prepare(q0)
	if err != nil {
		log.Fatal(err)
	}

	// Scatter-gather execution: each probe routes to the shard owning its
	// index group; results are byte-identical to a single store.
	res, err := prep.Exec(str("a0"), str("u0"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ0(a0, u0) = %v — fetched %d tuples across %d shards\n",
		res.Tuples, res.Stats.TuplesFetched, sharded.NumShards())

	// Shard-parallel ingest: one batch, routed by content, committed
	// under independent per-shard locks.
	batch := []bcq.LiveOp{
		bcq.InsertOp("in_album", tup("p9", "a0")),
		bcq.InsertOp("tagging", tup("p9", "u1", "u0")),
		bcq.InsertOp("in_album", tup("p8", "a7")),
		bcq.InsertOp("friends", tup("u7", "u0")),
	}
	if err := sharded.Apply(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied a %d-op batch; shard balance now:", len(batch))
	for s, n := range sharded.ShardSizes() {
		fmt.Printf(" [%d] %d", s, n)
	}
	fmt.Println()

	// A pinned epoch vector is a consistent cut: this view sees the whole
	// batch; a view pinned before it would see none of it.
	view := sharded.View()
	res, err = prep.ExecOn(view, str("a0"), str("u0"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ0(a0, u0) on the pinned vector %v = %v\n", view.Epochs(), res.Tuples)

	// The bounded-access guarantee survives partitioning: same fetch
	// count no matter how many shards (or how much data) there are.
	fmt.Printf("fetched %d tuples — flat in |D| and in P\n", res.Stats.TuplesFetched)
}
