// Serving: heavy concurrent traffic over one live store.
//
// The quickstart's social network gets an HTTP front: a query server
// multiplexes many clients onto the bounded executor through a worker
// pool, while a writer keeps ingesting tags and friendships. Two
// properties carry the load:
//
//   - hot queries are answered from an epoch-keyed result cache. The
//     cache key includes the snapshot epoch, so a write batch does not
//     "invalidate" anything — it publishes a new epoch, post-write
//     requests form new keys, and a stale answer is simply unreachable;
//   - every executed answer is bounded: the data touched per request
//     depends on the query and the access schema, not on how large the
//     store has grown while serving.
//
// The demo fires concurrent clients against /query under ingest churn
// and prints the traffic, hit-rate and access statistics.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"bcq"
)

const ddl = `
relation in_album(photo_id, album_id)
relation friends(user_id, friend_id)
relation tagging(photo_id, tagger_id, taggee_id)

constraint in_album: (album_id) -> (photo_id, 1000)
constraint friends: (user_id) -> (friend_id, 5000)
constraint tagging: (photo_id, taggee_id) -> (tagger_id, 1)
`

func tup(vals ...string) bcq.Tuple {
	t := make(bcq.Tuple, len(vals))
	for i, v := range vals {
		t[i] = bcq.Str(v)
	}
	return t
}

func main() {
	cat, acc, err := bcq.ParseDDL(ddl)
	if err != nil {
		log.Fatal(err)
	}
	db := bcq.NewDatabase(cat)
	for a := 0; a < 8; a++ {
		for p := 0; p < 6; p++ {
			photo := fmt.Sprintf("a%dp%d", a, p)
			must(db.Insert("in_album", tup(photo, fmt.Sprintf("a%d", a))))
			must(db.Insert("tagging", tup(photo, fmt.Sprintf("u%d", (a+p)%8), fmt.Sprintf("u%d", p%8))))
		}
	}
	for u := 0; u < 8; u++ {
		for f := 1; f <= 3; f++ {
			must(db.Insert("friends", tup(fmt.Sprintf("u%d", u), fmt.Sprintf("u%d", (u+f)%8))))
		}
	}

	ld, err := bcq.NewLiveDatabase(db, acc, bcq.LiveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := bcq.NewLiveEngine(ld, bcq.EngineOptions{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := bcq.NewQueryServer(eng, bcq.ServeOptions{
		Workers: 8,
		Ingest: func(ops []bcq.LiveOp) error {
			_, err := ld.Apply(ops)
			return err
		},
		Metrics: ld,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("bqserve demo listening on %s\n\n", base)

	// One writer streams friendships in (duplicates of existing pairs are
	// always schema-safe), advancing the epoch continuously.
	stop := make(chan struct{})
	var writerOps int
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := fmt.Sprintf(`{"ops": [{"op": "insert", "rel": "friends", "tuple": ["u%d", "u%d"]}]}`,
				i%8, (i+1)%8)
			resp, err := http.Post(base+"/ingest", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
			writerOps++
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Concurrent clients hammer two parameterized shapes.
	const clients, perClient = 8, 300
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var body string
				if i%2 == 0 {
					body = fmt.Sprintf(`{"query": "select photo_id from in_album where album_id = ?", "args": ["a%d"]}`, i%8)
				} else {
					body = fmt.Sprintf(`{"query": "select friend_id from friends where user_id = ?", "args": ["u%d"]}`, (c+i)%8)
				}
				resp, err := http.Post(base+"/query", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					log.Fatal(err)
				}
				var env struct {
					Cached bool   `json:"cached"`
					Epoch  string `json:"epoch"`
					Error  string `json:"error"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
					log.Fatal(err)
				}
				resp.Body.Close()
				if env.Error != "" {
					log.Fatalf("query failed: %s", env.Error)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	writerWG.Wait()

	total := clients * perClient
	cs := srv.CacheStats()
	es := eng.Stats()
	ig := ld.IngestStats()
	fmt.Printf("served %d queries from %d clients in %v (%.0f q/s)\n",
		total, clients, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("result cache: %d hits / %d misses (%.0f%% hit rate) — every hit pinned the same epoch its entry was computed at\n",
		cs.Hits, cs.Misses, 100*float64(cs.Hits)/float64(cs.Hits+cs.Misses))
	fmt.Printf("plan cache:   %d prepares, %d analyses — two shapes, planned once each\n",
		es.Prepares, es.CacheMisses)
	fmt.Printf("ingest:       %d writes committed concurrently, store now at epoch %d (|D| = %d)\n",
		ig.OpsApplied, ig.Epochs, ld.Snapshot().NumTuples())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
