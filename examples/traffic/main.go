// Traffic-accident analytics on the TFACC-shaped dataset.
//
// The paper's headline experiment: on a 21.4 GB accident dataset, the
// bounded plan for a day's accidents joined with vehicles and casualties
// accesses a few thousand tuples and is three orders of magnitude faster
// than MySQL. This example runs the same shape of query — "accidents on a
// given day, their vehicles and the vehicles' drivers" — at several scales
// and prints the access counts, demonstrating that they do not move while
// the database grows.
//
// Run with: go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"time"

	"bcq"
	"bcq/internal/datagen"
)

const daily = `
query daily_vehicles:
select a.aid as accident, v.vid as vehicle, d.drv_age_band as driver_age
from accident as a, vehicle as v, driver as d
where a.acc_date = 17
  and v.aid = a.aid
  and d.vid = v.vid
  and a.severity = 1
`

func main() {
	ds := datagen.TFACC()
	q, err := bcq.ParseQuery(daily, ds.Catalog)
	if err != nil {
		log.Fatal(err)
	}
	an, err := bcq.Analyze(ds.Catalog, q, ds.Access)
	if err != nil {
		log.Fatal(err)
	}
	eb := an.EffectivelyBounded()
	if !eb.EffectivelyBounded {
		log.Fatalf("expected effectively bounded; got missing=%v unindexed=%v",
			eb.MissingClasses, eb.UnindexedAtoms)
	}
	p, err := an.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Explain())
	fmt.Println()

	for _, sf := range []float64{1.0 / 16, 1.0 / 4, 1.0} {
		db := ds.MustBuild(sf)

		start := time.Now()
		res, err := bcq.Execute(p, db)
		if err != nil {
			log.Fatal(err)
		}
		evalTime := time.Since(start)

		start = time.Now()
		base, err := bcq.ExecuteBaselineIndexLoop(an, db, bcq.BaselineOptions{ConstIndexOnly: true, Budget: 3_000_000})
		baseLabel := "DNF"
		var baseTouched int64
		if err == nil {
			baseLabel = time.Since(start).Round(time.Microsecond).String()
			baseTouched = base.Stats.Total()
			if len(base.Tuples) != len(res.Tuples) {
				log.Fatalf("answer mismatch: %d vs %d", len(res.Tuples), len(base.Tuples))
			}
		}
		fmt.Printf("|D| = %7d: evalDQ %4d rows in %8v touching %4d tuples; MySQL-like %s touching %d\n",
			db.NumTuples(), len(res.Tuples), evalTime.Round(time.Microsecond),
			res.Stats.TuplesFetched, baseLabel, baseTouched)
	}
	fmt.Println("\nevalDQ's tuple count is identical at every scale — that is effective boundedness.")
}
