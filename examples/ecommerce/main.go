// E-commerce web forms over TPC-H-shaped data.
//
// The paper's introduction motivates effective boundedness with
// parameterized queries behind Web forms: each form submission instantiates
// a template, and the site wants a per-request data-access guarantee no
// matter how large the order history grows. This example checks three such
// templates against the TPC-H access schema — orders of a customer, line
// items of an order joined to their part, and a cross-customer browse that
// is *not* boundable — and runs the bounded ones.
//
// Run with: go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"

	"bcq"
	"bcq/internal/datagen"
)

func main() {
	ds := datagen.TPCH()
	db := ds.MustBuild(0.5)
	fmt.Printf("TPC-H-shaped store: %d tuples, %d access constraints\n\n",
		db.NumTuples(), ds.Access.Size())

	templates := []string{
		// "My orders": everything about one customer's orders.
		`query my_orders:
		 select o.o_orderkey as k1, o.o_orderstatus as st
		 from orders as o
		 where o.o_custkey = 411 and o.o_orderpriority = 2`,
		// "Order detail": line items of an order with their parts.
		`query order_detail:
		 select l.l_linenumber as line, p.p_brand as brand, l.l_quantity as qty
		 from lineitem as l, part as p
		 where l.l_orderkey = 1203 and l.l_partkey = p.p_partkey`,
		// "Browse by brand": not anchored to any customer/order — the
		// checker proves no bounded evaluation exists under this schema.
		`query browse_brand:
		 select l.l_orderkey as k1
		 from lineitem as l, part as p
		 where l.l_partkey = p.p_partkey and p.p_brand = 7`,
	}

	for _, src := range templates {
		q, err := bcq.ParseQuery(src, ds.Catalog)
		if err != nil {
			log.Fatal(err)
		}
		an, err := bcq.Analyze(ds.Catalog, q, ds.Access)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s\n", q.Name)
		eb := an.EffectivelyBounded()
		if !eb.EffectivelyBounded {
			fmt.Printf("   not effectively bounded — this form cannot get a per-request guarantee\n")
			if len(eb.MissingClasses) > 0 {
				fmt.Printf("   underivable parameters: %v\n", eb.MissingClasses)
			}
			dp := an.DominatingParameters(0.9)
			if dp.Exists {
				fmt.Printf("   suggestion: also ask the user for")
				for _, ref := range dp.Params {
					fmt.Printf(" %s", q.RefString(ref))
				}
				fmt.Println()
			}
			fmt.Println()
			continue
		}
		p, err := an.Plan()
		if err != nil {
			log.Fatal(err)
		}
		res, err := bcq.Execute(p, db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   guaranteed ≤ %s tuples per request; this run fetched %d and returned %d rows\n",
			p.FetchBound, res.Stats.TuplesFetched, len(res.Tuples))
		for i, t := range res.Tuples {
			if i >= 3 {
				fmt.Printf("   ... (%d more)\n", len(res.Tuples)-3)
				break
			}
			fmt.Printf("   %v\n", t)
		}
		fmt.Println()
	}
}
