// Social search with parameterized queries: the paper's Q1 and Example 9.
//
// Q1 is Q0 as a template — the album and user are placeholder slots
// ("album_id = ?") a user fills in through the UI. The template itself is
// not bounded: without knowing the album or user, no bounded subset of the
// data suffices. findDPh identifies a minimum set of slots (the
// *dominating parameters*) whose instantiation makes the query effectively
// bounded; the app can then require exactly those fields in the form.
//
// Run with: go run ./examples/socialsearch
package main

import (
	"fmt"
	"log"

	"bcq"
	"bcq/internal/datagen"
)

const q1 = `
query Q1:
select t1.photo_id
from in_album as t1, friends as t2, tagging as t3
where t1.album_id = ? and t2.user_id = ?
  and t1.photo_id = t3.photo_id
  and t3.tagger_id = t2.friend_id
  and t3.taggee_id = t2.user_id
`

func main() {
	ds := datagen.Social()
	q, err := bcq.ParseQuery(q1, ds.Catalog)
	if err != nil {
		log.Fatal(err)
	}
	an, err := bcq.Analyze(ds.Catalog, q, ds.Access)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("template:", q)
	fmt.Println("bounded as-is?            ", an.Bounded().Bounded)
	fmt.Println("effectively bounded as-is?", an.EffectivelyBounded().EffectivelyBounded)
	fmt.Println()

	// findDPh (Section 4.3): which slots must the user fill in?
	dp := an.DominatingParameters(3.0 / 7.0)
	if !dp.Exists {
		log.Fatalf("no dominating parameters: %s", dp.Reason)
	}
	fmt.Println("dominating parameters (instantiate these to make the query bounded):")
	for _, ref := range dp.Params {
		fmt.Printf("  %s\n", q.RefString(ref))
	}
	fmt.Printf("ratio |X_P|/parameters = %.2f\n\n", dp.Ratio)

	// The exact (exponential) solver agrees on this instance.
	exact, err := an.ExactMinDominatingParameters(3.0/7.0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact minimum confirms: %d parameter occurrences\n\n", len(exact.Params))

	// Instantiate the slots — the user picked album 7 and user 12 — and
	// run the now-bounded query.
	inst := q.Instantiate(map[bcq.AttrRef]bcq.Value{
		{Atom: 0, Attr: "album_id"}:  bcq.Int(7),
		{Atom: 1, Attr: "user_id"}:   bcq.Int(12),
		{Atom: 2, Attr: "taggee_id"}: bcq.Int(12), // Σ_Q-equal to user_id
	})
	ian, err := bcq.Analyze(ds.Catalog, inst, ds.Access)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instantiated:", inst)
	fmt.Println("effectively bounded now?", ian.EffectivelyBounded().EffectivelyBounded)

	p, err := ian.Plan()
	if err != nil {
		log.Fatal(err)
	}
	db := ds.MustBuild(1)
	res, err := bcq.Execute(p, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answers: %d, fetched %d of %d tuples (bound %s)\n",
		len(res.Tuples), res.Stats.TuplesFetched, db.NumTuples(), p.FetchBound)
}
