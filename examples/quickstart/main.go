// Quickstart: the paper's Example 1 end to end.
//
// A social network stores photo albums, friendships and photo tags. The
// platform enforces limits — at most 1000 photos per album, at most 5000
// friends per user, one tagger per (photo, taggee) — and has indices to
// match. Those limits and indices form an access schema, and under it the
// query "photos in album a in which user u was tagged by a friend" is
// effectively bounded: answerable by fetching at most 7000 tuples no
// matter how big the network is.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bcq"
	"bcq/internal/datagen"
)

const ddl = `
relation in_album(photo_id, album_id)
relation friends(user_id, friend_id)
relation tagging(photo_id, tagger_id, taggee_id)

# The access schema A0 of the paper's Example 2.
constraint in_album: (album_id) -> (photo_id, 1000)
constraint friends: (user_id) -> (friend_id, 5000)
constraint tagging: (photo_id, taggee_id) -> (tagger_id, 1)
`

const q0 = `
query Q0:
select t1.photo_id
from in_album as t1, friends as t2, tagging as t3
where t1.album_id = 3
  and t2.user_id = 74
  and t1.photo_id = t3.photo_id
  and t3.tagger_id = t2.friend_id
  and t3.taggee_id = t2.user_id
`

func main() {
	cat, acc, err := bcq.ParseDDL(ddl)
	if err != nil {
		log.Fatal(err)
	}
	q, err := bcq.ParseQuery(q0, cat)
	if err != nil {
		log.Fatal(err)
	}

	an, err := bcq.Analyze(cat, q, acc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)
	fmt.Println()

	// Step 1: the checkers (Theorems 3 and 4).
	fmt.Println("bounded under A0?            ", an.Bounded().Bounded)
	fmt.Println("effectively bounded under A0?", an.EffectivelyBounded().EffectivelyBounded)
	fmt.Println()

	// Step 2: the bounded query plan (algorithm QPlan, Section 5.1). Its
	// worst-case budget is the paper's 7000 tuples: 1000 photos + 5000
	// friends + 1000 tag lookups.
	p, err := an.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Explain())
	fmt.Println()

	// Step 3: run it on generated social data at two scales. The bounded
	// evaluation touches the same number of tuples on both.
	for _, sf := range []float64{0.25, 1.0} {
		db := datagen.Social().MustBuild(sf)
		res, err := bcq.Execute(p, db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("|D| = %6d tuples: %d answers, fetched %d tuples (|D_Q| = %d)\n",
			db.NumTuples(), len(res.Tuples), res.Stats.TuplesFetched, res.DQSize)

		// Cross-check against a conventional full-data evaluation.
		base, err := bcq.ExecuteBaseline(an, db, bcq.BaselineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("                    baseline agrees (%d answers) after touching %d tuples\n",
			len(base.Tuples), base.Stats.Total())
	}
}
