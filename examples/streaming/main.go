// Streaming: serving exact bounded answers while the data changes.
//
// The quickstart's social network goes live: tags and friendships keep
// streaming in while the platform serves "photos in album a in which
// user u was tagged by a friend". The live layer makes that safe:
//
//   - every write batch is checked against the access schema, so the
//     platform limits (at most 4 photos per album here, so the demo can
//     hit the bound) stay true and every cached plan stays sound;
//   - readers pin an immutable snapshot per evaluation — a report opened
//     before a write batch keeps seeing the old data, with no locks in
//     either direction;
//   - the indices are maintained incrementally, so the query's tuple
//     accesses stay flat no matter how much the database grows.
//
// Run with: go run ./examples/streaming
package main

import (
	"errors"
	"fmt"
	"log"

	"bcq"
)

const ddl = `
relation in_album(photo_id, album_id)
relation friends(user_id, friend_id)
relation tagging(photo_id, tagger_id, taggee_id)

# Example 2's access schema, with a photos-per-album limit small enough
# to run into.
constraint in_album: (album_id) -> (photo_id, 4)
constraint friends: (user_id) -> (friend_id, 5000)
constraint tagging: (photo_id, taggee_id) -> (tagger_id, 1)
`

const q0 = `
query Q0:
select t1.photo_id
from in_album as t1, friends as t2, tagging as t3
where t1.album_id = 'a0'
  and t2.user_id = 'u0'
  and t1.photo_id = t3.photo_id
  and t3.tagger_id = t2.friend_id
  and t3.taggee_id = t2.user_id
`

func str(s string) bcq.Value { return bcq.Str(s) }

func tup(vals ...string) bcq.Tuple {
	t := make(bcq.Tuple, len(vals))
	for i, v := range vals {
		t[i] = str(v)
	}
	return t
}

func main() {
	cat, acc, err := bcq.ParseDDL(ddl)
	if err != nil {
		log.Fatal(err)
	}

	// Load the initial state: album a0 = {p1, p2}; u0's friends = {f1};
	// p1 tagged by the friend f1, p2 by a stranger.
	db := bcq.NewDatabase(cat)
	seed := []struct {
		rel string
		t   bcq.Tuple
	}{
		{"in_album", tup("p1", "a0")},
		{"in_album", tup("p2", "a0")},
		{"friends", tup("u0", "f1")},
		{"tagging", tup("p1", "f1", "u0")},
		{"tagging", tup("p2", "s9", "u0")},
	}
	for _, s := range seed {
		if err := db.Insert(s.rel, s.t); err != nil {
			log.Fatal(err)
		}
	}

	ld, err := bcq.NewLiveDatabase(db, acc, bcq.LiveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := bcq.NewLiveEngine(ld, bcq.EngineOptions{Parallelism: 2})
	if err != nil {
		log.Fatal(err)
	}
	prep, err := eng.Prepare(q0)
	if err != nil {
		log.Fatal(err)
	}
	answers := func(tag string) *bcq.Result {
		res, err := prep.Exec()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s answers=%v  (fetched %d tuples, epoch %d, |D|=%d)\n",
			tag, res.Tuples, res.Stats.TuplesFetched, ld.Epoch(), ld.Snapshot().NumTuples())
		return res
	}

	fmt.Println("— live serving —")
	answers("initial state:")

	// The base is sealed; direct inserts are refused with a typed error...
	if err := db.Insert("in_album", tup("p3", "a0")); !errors.Is(err, bcq.ErrSealed) {
		log.Fatalf("expected ErrSealed, got %v", err)
	}
	fmt.Println("\ndirect insert into the sealed base: rejected (ErrSealed) — writes go through the live layer")

	// ...while the live layer applies them as an atomic epoch.
	pinned := ld.Snapshot() // a report pinned before the write batch
	_, err = ld.Apply([]bcq.LiveOp{
		bcq.InsertOp("in_album", tup("p3", "a0")),
		bcq.InsertOp("tagging", tup("p3", "f1", "u0")),
	})
	if err != nil {
		log.Fatal(err)
	}
	answers("after live batch:")
	res, err := prep.ExecOn(pinned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s answers=%v  (epoch %d — isolated from the batch)\n",
		"same query, pinned earlier:", res.Tuples, pinned.Epoch())

	// A write that would break an access constraint never commits: album
	// a0 holds p1, p2, p3 — two more photos would exceed the bound of 4,
	// and with it the soundness of every cached plan.
	fmt.Println("\n— schema enforcement —")
	_, err = ld.Apply([]bcq.LiveOp{
		bcq.InsertOp("in_album", tup("p4", "a0")),
		bcq.InsertOp("in_album", tup("p5", "a0")),
	})
	if errors.Is(err, bcq.ErrLiveBound) {
		fmt.Println("strict mode: 5th photo in album a0 rejected, whole batch rolled back:")
		fmt.Println("   ", err)
	} else {
		log.Fatalf("expected ErrLiveBound, got %v", err)
	}

	// A permissive store quarantines the violator and commits the rest.
	ld2, err := bcq.NewLiveDatabase(mustFreeze(ld), acc, bcq.LiveOptions{Mode: bcq.LivePermissive})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ld2.Apply([]bcq.LiveOp{
		bcq.InsertOp("in_album", tup("p4", "a0")),
		bcq.InsertOp("in_album", tup("p5", "a0")),
	}); err != nil {
		log.Fatal(err)
	}
	q := ld2.Quarantine()
	fmt.Printf("permissive mode: batch committed with %d op quarantined (%v)\n", len(q), q[0].Op.Tuple)

	// Growth does not degrade reads: stream in duplicate engagement (the
	// same mechanism datagen scales |D| with) and watch the fetched-tuple
	// count hold still.
	fmt.Println("\n— bounded access under growth —")
	base := answers("before growth:")
	for round := 0; round < 3; round++ {
		var ops []bcq.LiveOp
		for i := 0; i < 2000; i++ {
			ops = append(ops, bcq.InsertOp("friends", tup("u0", "f1")))
			if len(ops) == 64 {
				if _, err := ld.Apply(ops); err != nil {
					log.Fatal(err)
				}
				ops = ops[:0]
			}
		}
		if len(ops) > 0 {
			if _, err := ld.Apply(ops); err != nil {
				log.Fatal(err)
			}
		}
		grown := answers(fmt.Sprintf("after +%dk duplicates:", 2*(round+1)))
		if grown.Stats.TuplesFetched != base.Stats.TuplesFetched {
			log.Fatalf("tuple accesses changed: %d → %d", base.Stats.TuplesFetched, grown.Stats.TuplesFetched)
		}
	}
	st := ld.IngestStats()
	fmt.Printf("\ningest: %d ops over %d epochs (%d chain flattens); reads stayed exact and flat throughout\n",
		st.OpsApplied, st.Epochs, st.Flattens)
}

// mustFreeze materializes the live store's current snapshot as a fresh
// sealed database (the demo reuses it as the base of a permissive store).
func mustFreeze(ld *bcq.LiveDatabase) *bcq.Database {
	db, err := ld.Snapshot().Freeze()
	if err != nil {
		log.Fatal(err)
	}
	return db
}
