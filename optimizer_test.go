// Acceptance tests for the cost-based plan optimizer: on multi-relation
// testdata queries whose declared bounds mislead, the cost-ordered plan
// must fetch measurably fewer tuples than the naive derivation order
// while returning byte-identical answers — and a live engine must
// re-plan, without restart, when ingested data drifts the observed
// cardinalities past the threshold.
package bcq

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// ordersScene loads testdata/orders.ddl with its deterministic data:
// 4 regions × 50 users (dense region groups at the declared bound),
// tier = uid mod 100 (2 users per tier, declared bound 10000), 5 orders
// per user, 20 items.
func ordersScene(t testing.TB) (*Catalog, *AccessSchema, *Database) {
	t.Helper()
	src, err := os.ReadFile("testdata/orders.ddl")
	if err != nil {
		t.Fatal(err)
	}
	cat, acc, err := ParseDDL(string(src))
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(cat)
	ins := func(rel string, tu Tuple) {
		t.Helper()
		if err := db.Insert(rel, tu); err != nil {
			t.Fatal(err)
		}
	}
	for uid := 0; uid < 200; uid++ {
		ins("users", Tuple{Int(int64(uid)), Str(fmt.Sprintf("r%d", uid/50)),
			Int(int64(uid % 100)), Str(fmt.Sprintf("name%d", uid))})
		for k := 0; k < 5; k++ {
			oid := int64(uid*10 + k)
			ins("orders", Tuple{Int(oid), Int(int64(uid)), Int(oid % 30), Int(oid % 20)})
		}
	}
	for item := int64(0); item < 20; item++ {
		ins("items", Tuple{Int(item), Int(item % 5), Int(item % 2)})
	}
	return cat, acc, db
}

// readQuery parses one testdata query against a catalog.
func readQuery(t testing.TB, path string, cat *Catalog) *Query {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(string(src), cat)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestCostOrderedPlanFetchesFewerTuples is the headline acceptance
// check: on Q2 (2 relations) and Q3 (3 relations) the cost-based plan
// returns byte-identical answers to the naive plan while actually
// fetching strictly fewer tuples, because it probes the tiny observed
// tier groups instead of the dense region groups the declared bounds
// recommend.
func TestCostOrderedPlanFetchesFewerTuples(t *testing.T) {
	cat, acc, db := ordersScene(t)
	if err := db.EnsureIndexes(acc); err != nil {
		t.Fatal(err)
	}
	cs := db.CardStats()

	for _, qp := range []string{"testdata/q2.sql", "testdata/q3.sql"} {
		q := readQuery(t, qp, cat)
		a, err := Analyze(cat, q, acc)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := a.Plan()
		if err != nil {
			t.Fatal(err)
		}
		opt, err := a.OptimizedPlan(&cs)
		if err != nil {
			t.Fatal(err)
		}

		resN, err := Execute(naive, db)
		if err != nil {
			t.Fatal(err)
		}
		resO, err := Execute(opt, db)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%v|%v", resN.Cols, resN.Tuples) != fmt.Sprintf("%v|%v", resO.Cols, resO.Tuples) {
			t.Fatalf("%s: answers diverged\n naive: %v\n cost:  %v", q.Name, resN.Tuples, resO.Tuples)
		}
		if len(resO.Tuples) == 0 {
			t.Fatalf("%s: expected a non-empty answer (scene bug)", q.Name)
		}
		if resO.Stats.TuplesFetched >= resN.Stats.TuplesFetched {
			t.Errorf("%s: cost-ordered plan fetched %d tuples, naive fetched %d — want strictly fewer\nnaive:\n%s\ncost:\n%s",
				q.Name, resO.Stats.TuplesFetched, resN.Stats.TuplesFetched, naive.Explain(), opt.Explain())
		} else {
			t.Logf("%s: cost-ordered fetched %d vs naive %d", q.Name, resO.Stats.TuplesFetched, resN.Stats.TuplesFetched)
		}

		// The win must come from the documented mechanism: the naive plan
		// probes regions first, the cost-based plan probes tiers.
		if x := naive.Steps[0].AC.X; len(x) != 1 || x[0] != "region" {
			t.Errorf("%s: naive first step probes %v, want [region]", q.Name, x)
		}
		if x := opt.Steps[0].AC.X; len(x) != 1 || x[0] != "tier" {
			t.Errorf("%s: cost-ordered first step probes %v, want [tier]", q.Name, x)
		}
	}
}

// TestStatsDriftTriggersReplanWithoutRestart ingests skewed data into a
// live engine until the observed tier cardinality drifts past the
// re-planning threshold, then observes the plan cache discard and
// rebuild the plan — same process, new fetch order, Replans counter
// advanced.
func TestStatsDriftTriggersReplanWithoutRestart(t *testing.T) {
	cat, acc, db := ordersScene(t)
	_ = cat
	ld, err := NewLiveDatabase(db, acc, LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewLiveEngine(ld, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("testdata/q2.sql")
	if err != nil {
		t.Fatal(err)
	}
	text := string(src)

	p1, err := eng.Prepare(text)
	if err != nil {
		t.Fatal(err)
	}
	if x := p1.Plan().Steps[0].AC.X; len(x) != 1 || x[0] != "tier" {
		t.Fatalf("initial plan probes %v first, want [tier] (tier groups are tiny)", x)
	}
	res1, err := p1.Exec()
	if err != nil {
		t.Fatal(err)
	}

	// Skew the data: 60 new users per tier, spread over fresh regions so
	// the region groups stay within their declared bound of 50. Tier
	// groups grow 2 → 62 on average; region groups stay ≤ 50.
	uid := int64(10_000)
	var ops []LiveOp
	flush := func() {
		t.Helper()
		if len(ops) == 0 {
			return
		}
		if _, err := ld.Apply(ops); err != nil {
			t.Fatal(err)
		}
		ops = ops[:0]
	}
	for tier := int64(0); tier < 100; tier++ {
		for k := 0; k < 60; k++ {
			region := fmt.Sprintf("g%d_%d", tier, k/50)
			ops = append(ops, InsertOp("users", Tuple{Int(uid), Str(region), Int(tier), Str("skew")}))
			uid++
			if len(ops) == 512 {
				flush()
			}
		}
	}
	flush()

	p2, err := eng.Prepare(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Replans; got == 0 {
		t.Fatalf("Replans = 0 after 30× cardinality drift; plan cache never re-planned")
	}
	if p2 == p1 {
		t.Fatalf("cache returned the pre-drift plan object")
	}
	if x := p2.Plan().Steps[0].AC.X; len(x) != 1 || x[0] != "region" {
		t.Fatalf("post-drift plan probes %v first, want [region] (tier groups now dwarf region groups)\n%s",
			x, p2.Explain(nil))
	}

	// The re-planned prepared query still answers correctly (the original
	// uid-55 user is untouched by the skew inserts; new tier-55 users are
	// in g55_* regions, not r1).
	res2, err := p2.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", res1.Tuples) != fmt.Sprintf("%v", res2.Tuples) {
		t.Fatalf("answers changed across re-plan: %v vs %v", res1.Tuples, res2.Tuples)
	}

	// Stability: preparing again without further drift serves the cached
	// re-planned entry (no replan storm).
	before := eng.Stats().Replans
	if _, err := eng.Prepare(text); err != nil {
		t.Fatal(err)
	}
	if after := eng.Stats().Replans; after != before {
		t.Fatalf("replan storm: Replans advanced %d → %d with no drift", before, after)
	}
}

// TestExplainShowsEstimatedAndActualCounts pins the satellite fix:
// Explain must print per-step actual fetch counts when given an
// execution result, and they must match the executor's totals.
func TestExplainShowsEstimatedAndActualCounts(t *testing.T) {
	cat, acc, db := ordersScene(t)
	eng, err := NewEngine(cat, acc, db, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("testdata/q2.sql")
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.Prepare(string(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}

	if len(res.StepStats) != len(p.Plan().Steps) {
		t.Fatalf("StepStats has %d entries for %d plan steps", len(res.StepStats), len(p.Plan().Steps))
	}
	var perStep int64
	for _, s := range res.StepStats {
		perStep += s.Fetched
	}
	for _, s := range res.VerifyStats {
		perStep += s.Fetched
	}
	if perStep != res.Stats.TuplesFetched {
		t.Fatalf("per-step fetches sum to %d, result counted %d", perStep, res.Stats.TuplesFetched)
	}

	out := p.Explain(res)
	for _, want := range []string{"est ", "actual ", fmt.Sprintf("actual: %d probes, %d tuples fetched", res.Stats.IndexLookups, res.Stats.TuplesFetched)} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain with actuals missing %q:\n%s", want, out)
		}
	}
	// The tier probe fetched exactly the 2 tier-55 users.
	if !strings.Contains(out, "actual 1 probes → 2") {
		t.Errorf("Explain should show the tier step fetching 2 tuples:\n%s", out)
	}
}
