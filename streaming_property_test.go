// Property tests for the streaming executor's two contracts (run them
// with -race):
//
//  1. Equivalence: a drained stream is byte-identical to the
//     materializing execution — answers, access statistics, |D_Q| — on
//     every store kind (sealed, live snapshot, sharded view).
//  2. Pinned-snapshot paging: pulling a stream to exhaustion across many
//     small pages while writers churn the live store yields exactly the
//     answer of a one-shot execution on the pinned snapshot; concurrent
//     ingest can never leak into an open scan.
package bcq

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// drainStream pulls a stream to exhaustion through Next (page tuples at
// a time, like a paging client) and returns the sorted answers.
func drainStream(t testing.TB, s *Stream, page int) []Tuple {
	t.Helper()
	var got []Tuple
	for {
		n := 0
		for n < page {
			tu, ok, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				sort.Slice(got, func(i, j int) bool { return got[i].Compare(got[j]) < 0 })
				return got
			}
			got = append(got, tu)
			n++
		}
	}
}

// TestStreamingMatchesMaterializedAcrossStores checks contract (1) on
// all three store kinds over the shared social scene.
func TestStreamingMatchesMaterializedAcrossStores(t *testing.T) {
	const nAlbums, nUsers = 10, 6

	t.Run("live-and-sealed", func(t *testing.T) {
		ld, _, prep := seedLiveScene(t, nAlbums, nUsers)
		snap := ld.Snapshot()
		frozen, err := snap.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		for a := 0; a < nAlbums; a++ {
			for u := 0; u < nUsers; u++ {
				album, user := Str(fmt.Sprintf("a%d", a)), Str(fmt.Sprintf("u%d", u))
				for _, st := range []Store{snap, frozen} {
					full, err := prep.ExecOn(st, album, user)
					if err != nil {
						t.Fatal(err)
					}
					stream, err := prep.ExecStreamOn(st, StreamOptions{}, album, user)
					if err != nil {
						t.Fatal(err)
					}
					res, err := stream.Drain()
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(res.Tuples) != fmt.Sprint(full.Tuples) {
						t.Fatalf("a%d/u%d: stream %v != materialized %v", a, u, res.Tuples, full.Tuples)
					}
					if len(full.Tuples) > 0 {
						if got, want := renderLiveResult(res), renderLiveResult(full); got != want {
							t.Fatalf("a%d/u%d: stream diverged on non-empty answer\n stream: %s\n full:   %s", a, u, got, want)
						}
					}
					if len(full.Tuples) > 0 {
						checked++
					}
				}
			}
		}
		if checked == 0 {
			t.Fatal("no non-empty answers checked; scene too sparse")
		}
	})

	t.Run("sharded", func(t *testing.T) {
		_, prep := seedShardScene(t, nAlbums, nUsers, 4)
		checked := 0
		for a := 0; a < nAlbums; a++ {
			for u := 0; u < nUsers; u++ {
				album, user := Str(fmt.Sprintf("a%d", a)), Str(fmt.Sprintf("u%d", u))
				full, err := prep.Exec(album, user)
				if err != nil {
					t.Fatal(err)
				}
				stream, err := prep.ExecStream(StreamOptions{}, album, user)
				if err != nil {
					t.Fatal(err)
				}
				res, err := stream.Drain()
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(res.Tuples) != fmt.Sprint(full.Tuples) {
					t.Fatalf("a%d/u%d: sharded stream %v != materialized %v", a, u, res.Tuples, full.Tuples)
				}
				if len(full.Tuples) > 0 {
					if got, want := renderLiveResult(res), renderLiveResult(full); got != want {
						t.Fatalf("a%d/u%d: sharded stream diverged\n stream: %s\n full:   %s", a, u, got, want)
					}
					checked++
				}
			}
		}
		if checked == 0 {
			t.Fatal("no non-empty answers checked; scene too sparse")
		}
	})
}

// TestStreamingPagingUnderConcurrentIngest checks contract (2): readers
// open a stream on a pinned snapshot and page it to exhaustion in tiny
// pages while writers keep committing batches; every scan's union of
// pages must be byte-identical to the one-shot answer on the same pin,
// and ExecLimit answers must be true-answer prefixes.
func TestStreamingPagingUnderConcurrentIngest(t *testing.T) {
	const (
		nAlbums  = 12
		nUsers   = 8
		writers  = 2
		batches  = 50
		readers  = 3
		readIter = 25
	)
	ld, _, prep := seedLiveScene(t, nAlbums, nUsers)

	var wg sync.WaitGroup
	writersDone := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			for b := 0; b < batches; b++ {
				var ops []LiveOp
				for i := 0; i < 8; i++ {
					photo := fmt.Sprintf("sw%dp%d_%d", w, b, i)
					// Writes land in the very albums being paged, plus
					// fresh taggings, so a leaky scan would see them.
					ops = append(ops, InsertOp("in_album", Tuple{Str(photo), Str(fmt.Sprintf("a%d", rng.Intn(nAlbums)))}))
					ops = append(ops, InsertOp("tagging", Tuple{Str(photo), Str(fmt.Sprintf("u%d", rng.Intn(nUsers))), Str(fmt.Sprintf("u%d", rng.Intn(nUsers)))}))
				}
				if _, err := ld.Apply(ops); err != nil {
					t.Errorf("writer %d batch %d: %v", w, b, err)
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(writersDone)
	}()

	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			rng := rand.New(rand.NewSource(int64(400 + r)))
			for i := 0; i < readIter; i++ {
				album := Str(fmt.Sprintf("a%d", rng.Intn(nAlbums)))
				user := Str(fmt.Sprintf("u%d", rng.Intn(nUsers)))
				snap := ld.Snapshot()
				full, err := prep.ExecOn(snap, album, user)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				stream, err := prep.ExecStreamOn(snap, StreamOptions{}, album, user)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				paged := drainStream(t, stream, 1+rng.Intn(3))
				if fmt.Sprint(paged) != fmt.Sprint(full.Tuples) {
					t.Errorf("reader %d: paged union %v != pinned one-shot %v", r, paged, full.Tuples)
					return
				}

				// Early termination on the same pin: a limit-K answer is
				// min(K, |Q(D)|) true answers for no more fetching.
				lim, err := prep.ExecLimitOn(snap, 2, album, user)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				want := min(2, len(full.Tuples))
				if len(lim.Tuples) != want {
					t.Errorf("reader %d: limit 2 returned %d answers, want %d", r, len(lim.Tuples), want)
					return
				}
				inFull := make(map[string]bool, len(full.Tuples))
				for _, tu := range full.Tuples {
					inFull[fmt.Sprint(tu)] = true
				}
				for _, tu := range lim.Tuples {
					if !inFull[fmt.Sprint(tu)] {
						t.Errorf("reader %d: limited answer %v is not a true answer", r, tu)
						return
					}
				}
				if lim.Stats.TuplesFetched > full.Stats.TuplesFetched {
					t.Errorf("reader %d: limited run fetched %d > full run's %d", r, lim.Stats.TuplesFetched, full.Stats.TuplesFetched)
					return
				}
			}
		}(r)
	}
	rg.Wait()
	<-writersDone
}
