// BenchmarkPlanner is the cost-based-optimizer guardrail: it compares
// end-to-end bounded-evaluation latency of the naive (derivation-order)
// plan against the cost-ordered plan on the testdata orders scene, where
// declared bounds mislead, and reports the planning overhead itself.
// CI runs it once per change; a regression shows up as the cost variant
// losing its margin over naive (or planning time exploding).
package bcq

import (
	"testing"
)

func BenchmarkPlanner(b *testing.B) {
	cat, acc, db := ordersScene(b)
	if err := db.EnsureIndexes(acc); err != nil {
		b.Fatal(err)
	}
	cs := db.CardStats()
	q := readQuery(b, "testdata/q3.sql", cat)
	a, err := Analyze(cat, q, acc)
	if err != nil {
		b.Fatal(err)
	}
	naive, err := a.Plan()
	if err != nil {
		b.Fatal(err)
	}
	opt, err := a.OptimizedPlan(&cs)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("exec/naive", func(b *testing.B) {
		var fetched int64
		for i := 0; i < b.N; i++ {
			res, err := Execute(naive, db)
			if err != nil {
				b.Fatal(err)
			}
			fetched = res.Stats.TuplesFetched
		}
		b.ReportMetric(float64(fetched), "tuples_fetched")
	})
	b.Run("exec/cost", func(b *testing.B) {
		var fetched int64
		for i := 0; i < b.N; i++ {
			res, err := Execute(opt, db)
			if err != nil {
				b.Fatal(err)
			}
			fetched = res.Stats.TuplesFetched
		}
		b.ReportMetric(float64(fetched), "tuples_fetched")
	})
	b.Run("plan/naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.Plan(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plan/cost", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.OptimizedPlan(&cs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
