// BenchmarkPlanner is the cost-based-optimizer guardrail: it compares
// end-to-end bounded-evaluation latency of the naive (derivation-order)
// plan against the cost-ordered plan on the testdata orders scene, where
// declared bounds mislead, and reports the planning overhead itself.
// CI runs it once per change; a regression shows up as the cost variant
// losing its margin over naive (or planning time exploding).
//
// TestPlannerBenchEmit measures the same planning paths once — naive,
// greedy tier, full optimization — asserts the tiered mode's premise
// (the greedy tier plans strictly faster than the full optimizer), and,
// when PLANNER_BENCH_JSON names a path, writes the perf trajectory
// there; CI compares it against bench/BENCH_planner.json and fails past
// +25% (tools/benchcmp).
//
// Emitted lower-is-better fields:
//
//	plan.naive_ns      — QPlan: derivation order, no cost model
//	plan.greedy_ns     — OptimizeGreedy: what a tiered cold prepare pays
//	plan.optimize_ns   — Optimize: greedy + branch-and-bound search
//
// The fetched counts (no checked suffix, informational) record that the
// greedy tier's fetch volume sits between naive and optimized on Q3.
package bcq

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"
)

func BenchmarkPlanner(b *testing.B) {
	cat, acc, db := ordersScene(b)
	if err := db.EnsureIndexes(acc); err != nil {
		b.Fatal(err)
	}
	cs := db.CardStats()
	q := readQuery(b, "testdata/q3.sql", cat)
	a, err := Analyze(cat, q, acc)
	if err != nil {
		b.Fatal(err)
	}
	naive, err := a.Plan()
	if err != nil {
		b.Fatal(err)
	}
	opt, err := a.OptimizedPlan(&cs)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("exec/naive", func(b *testing.B) {
		var fetched int64
		for i := 0; i < b.N; i++ {
			res, err := Execute(naive, db)
			if err != nil {
				b.Fatal(err)
			}
			fetched = res.Stats.TuplesFetched
		}
		b.ReportMetric(float64(fetched), "tuples_fetched")
	})
	b.Run("exec/cost", func(b *testing.B) {
		var fetched int64
		for i := 0; i < b.N; i++ {
			res, err := Execute(opt, db)
			if err != nil {
				b.Fatal(err)
			}
			fetched = res.Stats.TuplesFetched
		}
		b.ReportMetric(float64(fetched), "tuples_fetched")
	})
	b.Run("plan/naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.Plan(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plan/greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.GreedyPlan(&cs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plan/cost", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.OptimizedPlan(&cs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestPlannerBenchEmit(t *testing.T) {
	cat, acc, db := ordersScene(t)
	if err := db.EnsureIndexes(acc); err != nil {
		t.Fatal(err)
	}
	cs := db.CardStats()
	// Planning latency is measured on the 6-atom Q6, where the
	// branch-and-bound search space is real; fetch volumes are recorded
	// on the canonical Q3 scene so the trajectory stays comparable with
	// BenchmarkPlanner.
	q := readQuery(t, "testdata/q6.sql", cat)
	a, err := Analyze(cat, q, acc)
	if err != nil {
		t.Fatal(err)
	}

	// Min-of-rounds keeps the per-op numbers stable on a noisy machine.
	const (
		rounds = 5
		iters  = 200
	)
	measure := func(f func() error) int64 {
		t.Helper()
		best := int64(0)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := f(); err != nil {
					t.Fatal(err)
				}
			}
			ns := time.Since(start).Nanoseconds() / iters
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	naiveNS := measure(func() error { _, err := a.Plan(); return err })
	greedyNS := measure(func() error { _, err := a.GreedyPlan(&cs); return err })
	optNS := measure(func() error { _, err := a.OptimizedPlan(&cs); return err })

	// The tiered mode's premise: a cold prepare on the greedy tier pays
	// measurably less planning latency than the full optimizer — greedy
	// is a strict subset of Optimize's work (no branch-and-bound search).
	if greedyNS >= optNS {
		t.Errorf("greedy tier planned in %s, full optimizer in %s — greedy must be measurably faster", time.Duration(greedyNS), time.Duration(optNS))
	}

	// Fetch volumes across tiers on Q3, for the emitted record.
	a, err = Analyze(cat, readQuery(t, "testdata/q3.sql", cat), acc)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := a.Plan()
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := a.GreedyPlan(&cs)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := a.OptimizedPlan(&cs)
	if err != nil {
		t.Fatal(err)
	}
	fetched := func(p *Plan) int64 {
		t.Helper()
		res, err := Execute(p, db)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.TuplesFetched
	}
	naiveF, greedyF, optF := fetched(naive), fetched(greedy), fetched(opt)
	if optF > greedyF {
		t.Errorf("optimized plan fetched %d > greedy tier %d on q3", optF, greedyF)
	}

	t.Logf("plan: naive %s, greedy %s, optimize %s; fetched: naive %d, greedy %d, optimized %d",
		time.Duration(naiveNS), time.Duration(greedyNS), time.Duration(optNS), naiveF, greedyF, optF)

	if path := os.Getenv("PLANNER_BENCH_JSON"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		doc := map[string]map[string]int64{
			"plan": {
				"naive_ns":    naiveNS,
				"greedy_ns":   greedyNS,
				"optimize_ns": optNS,
			},
			"exec": {
				"naive_fetched":     naiveF,
				"greedy_fetched":    greedyF,
				"optimized_fetched": optF,
			},
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
