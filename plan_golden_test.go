// Planner conformance suite: golden files under testdata/plans/ pin the
// chosen fetch order and cost estimates of every testdata query and of
// the full generated TFACC/MOT/TPCH workloads. A planner change that
// reorders a fetch step, re-picks a witness or moves an estimate shows
// up as a golden diff; regenerate deliberately with
//
//	go test -run TestPlannerConformance -update ./
package bcq

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bcq/internal/datagen"
	"bcq/internal/querygen"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/plans/*.golden")

// goldenScale keeps dataset builds fast while leaving every index
// populated enough for meaningful statistics.
const goldenScale = 1.0 / 16

// renderPlans prepares every query on the engine and renders its
// cost-based plan (or the planner's rejection), sanitizing the opaque
// placeholder sentinels so the goldens stay printable.
func renderPlans(t *testing.T, eng *Engine, queries []*Query) string {
	t.Helper()
	var b strings.Builder
	for _, q := range queries {
		fmt.Fprintf(&b, "== %s\n", q.Name)
		p, err := eng.PrepareQuery(q)
		if err != nil {
			fmt.Fprintf(&b, "rejected: %v\n\n", err)
			continue
		}
		b.WriteString(p.Explain(nil))
		b.WriteByte('\n')
	}
	return strings.ReplaceAll(b.String(), "\x00", "\\0")
}

// checkGolden compares (or with -update rewrites) one golden file.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "plans", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to generate): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("plans diverged from %s (rerun with -update if intentional)\n got:\n%s\n want:\n%s", path, got, want)
	}
}

func TestPlannerConformance(t *testing.T) {
	t.Run("social", func(t *testing.T) {
		ds := datagen.Social()
		db, err := ds.Build(goldenScale)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(ds.Catalog, ds.Access, db, EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		queries := []*Query{
			readQuery(t, "testdata/q0.sql", ds.Catalog),
			readQuery(t, "testdata/q1.sql", ds.Catalog),
		}
		checkGolden(t, "social", renderPlans(t, eng, queries))
	})

	t.Run("orders", func(t *testing.T) {
		cat, acc, db := ordersScene(t)
		eng, err := NewEngine(cat, acc, db, EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		queries := []*Query{
			readQuery(t, "testdata/q2.sql", cat),
			readQuery(t, "testdata/q3.sql", cat),
		}
		checkGolden(t, "orders", renderPlans(t, eng, queries))
	})

	for _, ds := range []*datagen.Dataset{datagen.TFACC(), datagen.MOT(), datagen.TPCH()} {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			if ds.Name == "TPCH" && testing.Short() {
				t.Skip("TPCH build skipped in -short")
			}
			db, err := ds.Build(goldenScale)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngine(ds.Catalog, ds.Access, db, EngineOptions{})
			if err != nil {
				t.Fatal(err)
			}
			ws, err := querygen.Workload(ds, querygen.Seed)
			if err != nil {
				t.Fatal(err)
			}
			queries := make([]*Query, len(ws))
			for i, w := range ws {
				queries[i] = w.Query
			}
			checkGolden(t, strings.ToLower(ds.Name), renderPlans(t, eng, queries))
		})
	}
}
