// Crash-recovery property tests for the durable tier (CI runs them
// under -race):
//
//  1. Committed-prefix identity: for ANY kill point — a fail point armed
//     on the n-th WAL append leaves a torn, unfsynced frame exactly the
//     way power loss mid-write would — reopening the directory yields a
//     store byte-identical (tuples, epoch key, cardinality statistics,
//     access schema) to one that applied the committed prefix and never
//     crashed. Checked on the single live store against an independent
//     in-memory reference, and on sharded stores (P ∈ {2, 3, 5}) against
//     the crashed store's own pre-crash state, which IS the committed
//     state because every snapshot publishes only after its WAL fsync.
//  2. Torn tails are counted, never applied: recovery surfaces each
//     dropped frame through Recovery.TruncatedRecords and the
//     bcq_wal_truncated_records_total metric.
package bcq

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"bcq/internal/wal"
)

// buildDurableScene loads the deterministic social scene used across
// the durability trials. Each call rebuilds the identical database, so
// one trial can hold a durable copy and an in-memory reference copy.
func buildDurableScene(t testing.TB) (*Catalog, *AccessSchema, *Database) {
	t.Helper()
	cat, acc, err := ParseDDL(liveTestDDL)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(cat)
	rng := rand.New(rand.NewSource(11))
	ins := func(rel string, vals ...string) {
		tu := make(Tuple, len(vals))
		for i, v := range vals {
			tu[i] = Str(v)
		}
		if err := db.Insert(rel, tu); err != nil {
			t.Fatal(err)
		}
	}
	const nAlbums, nUsers = 6, 6
	for a := 0; a < nAlbums; a++ {
		for p := 0; p < 4; p++ {
			photo := fmt.Sprintf("a%dp%d", a, p)
			ins("in_album", photo, fmt.Sprintf("a%d", a))
			ins("tagging", photo, fmt.Sprintf("u%d", rng.Intn(nUsers)), fmt.Sprintf("u%d", rng.Intn(nUsers)))
		}
	}
	for u := 0; u < nUsers; u++ {
		for f := 0; f < 3; f++ {
			ins("friends", fmt.Sprintf("u%d", u), fmt.Sprintf("u%d", rng.Intn(nUsers)))
		}
	}
	return cat, acc, db
}

// durableBatches builds a deterministic write sequence: fresh inserts in
// a trial-private keyspace, duplicates of seeded tuples, and deletes of
// the sequence's own earlier inserts — valid in order, so the committed
// prefix of any crash is replayable through normal admission.
func durableBatches(seed int64, n int) [][]LiveOp {
	rng := rand.New(rand.NewSource(seed))
	var batches [][]LiveOp
	var mine [][2]string
	for b := 0; b < n; b++ {
		var ops []LiveOp
		for i := 0; i < 4+rng.Intn(4); i++ {
			photo := fmt.Sprintf("t%dp%d_%d", seed, b, i)
			album := fmt.Sprintf("t%da%d", seed, rng.Intn(3))
			ops = append(ops, InsertOp("in_album", Tuple{Str(photo), Str(album)}))
			ops = append(ops, InsertOp("tagging", Tuple{Str(photo), Str(fmt.Sprintf("u%d", rng.Intn(6))), Str(fmt.Sprintf("u%d", rng.Intn(6)))}))
			mine = append(mine, [2]string{photo, album})
		}
		ops = append(ops, InsertOp("friends", Tuple{Str("u0"), Str("u1")}))
		if len(mine) > 6 && rng.Intn(2) == 0 {
			victim := mine[0]
			mine = mine[1:]
			ops = append(ops, DeleteOp("in_album", Tuple{Str(victim[0]), Str(victim[1])}))
		}
		batches = append(batches, ops)
	}
	return batches
}

// renderStoreState canonicalizes everything the recovery contract
// promises: epoch key, tuple count, cardinality statistics, access
// schema, and every relation's live tuples in sorted order.
func renderStoreState(t testing.TB, cat *Catalog, ld *LiveDatabase) string {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "epoch=%s tuples=%d\ncard=%+v\naccess=%s\n",
		ld.EpochKey(), ld.NumTuples(), ld.CardStats(), ld.Access().String())
	snap := ld.Snapshot()
	for _, rs := range cat.Relations() {
		var tuples []string
		err := snap.Scan(rs.Name(), func(_ int, tu Tuple) bool {
			tuples = append(tuples, fmt.Sprint(tu))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(tuples)
		fmt.Fprintf(&sb, "%s: %v\n", rs.Name(), tuples)
	}
	return sb.String()
}

// tornBytes keeps an injected torn frame strictly shorter than any real
// frame (8-byte header + a batch payload), so the in-test "crash" never
// accidentally leaves a complete, replayable record behind.
func tornBytes(rng *rand.Rand) int { return rng.Intn(11) }

// TestDurableCrashRecoveryPropertyLive kills the single live store at a
// randomized WAL append with a randomized torn-frame length, reopens the
// directory, and requires the recovered store byte-identical to an
// in-memory reference that applied exactly the committed prefix.
func TestDurableCrashRecoveryPropertyLive(t *testing.T) {
	const nBatches = 14
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			cat, acc, db := buildDurableScene(t)
			_, _, refDB := buildDurableScene(t)
			dir := filepath.Join(t.TempDir(), "store")

			dur, err := NewLiveDatabase(db, acc, LiveOptions{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewLiveDatabase(refDB, acc, LiveOptions{})
			if err != nil {
				t.Fatal(err)
			}

			kill := 1 + rng.Intn(nBatches)
			torn := tornBytes(rng)
			dur.WAL().SetFailPoint(kill, torn)

			batches := durableBatches(int64(trial), nBatches)
			committed := 0
			for _, ops := range batches {
				if _, err := dur.Apply(ops); err != nil {
					if !errors.Is(err, wal.ErrInjectedCrash) {
						t.Fatalf("batch %d: unexpected apply error: %v", committed, err)
					}
					break
				}
				if _, err := ref.Apply(ops); err != nil {
					t.Fatalf("reference apply: %v", err)
				}
				committed++
			}
			if committed != kill-1 {
				t.Fatalf("fail point at append %d let %d batches commit", kill, committed)
			}

			// The process is "dead": no Close, the torn tail stays.
			re, rec, err := OpenLiveDatabase(dir, cat, acc, LiveOptions{})
			if err != nil {
				t.Fatalf("recovery after kill point %d (torn %d): %v", kill, torn, err)
			}
			defer re.Close()

			var wantOps int64
			for _, ops := range batches[:committed] {
				wantOps += int64(len(ops))
			}
			if rec.ReplayedOps != wantOps {
				t.Errorf("replayed %d ops, committed prefix holds %d", rec.ReplayedOps, wantOps)
			}
			if torn > 0 && rec.TruncatedRecords == 0 {
				t.Errorf("a %d-byte torn frame was left behind but recovery truncated nothing", torn)
			}
			if got, want := renderStoreState(t, cat, re), renderStoreState(t, cat, ref); got != want {
				t.Errorf("kill point %d (torn %d): recovered store diverges from committed prefix\n got:  %s\n want: %s",
					kill, torn, got, want)
			}
		})
	}
}

// TestDurableCrashRecoveryPropertySharded arms the fail point on one
// shard's WAL at P ∈ {2, 3, 5}. The crashed store's in-memory state is
// the committed-prefix reference: snapshots publish only after the WAL
// fsync, so everything visible pre-crash is durable — including the
// sub-batches sibling shards committed from the batch that died.
func TestDurableCrashRecoveryPropertySharded(t *testing.T) {
	const nBatches = 16
	for _, p := range []int{2, 3, 5} {
		for trial := 0; trial < 2; trial++ {
			p, trial := p, trial
			t.Run(fmt.Sprintf("P=%d/trial=%d", p, trial), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(100*p + trial)))
				cat, acc, db := buildDurableScene(t)
				dir := filepath.Join(t.TempDir(), "store")

				ss, err := NewShardedDatabase(db, acc, ShardOptions{Shards: p, Dir: dir})
				if err != nil {
					t.Fatal(err)
				}
				victim := rng.Intn(p)
				kill := 1 + rng.Intn(3)
				torn := tornBytes(rng)
				ss.Shard(victim).WAL().SetFailPoint(kill, torn)

				crashed := false
				for b, ops := range durableBatches(int64(10*p+trial), nBatches) {
					if err := ss.Apply(ops); err != nil {
						if !errors.Is(err, wal.ErrInjectedCrash) {
							t.Fatalf("batch %d: unexpected apply error: %v", b, err)
						}
						crashed = true
						break
					}
				}
				if !crashed {
					t.Fatalf("fail point (shard %d, append %d) never fired", victim, kill)
				}

				// Pre-crash in-memory state = committed state.
				want := make([]string, p)
				for s := 0; s < p; s++ {
					want[s] = renderStoreState(t, cat, ss.Shard(s))
				}
				wantEpoch, wantTuples := ss.EpochKey(), ss.NumTuples()

				re, rec, err := OpenShardedDatabase(dir, cat, acc, ShardOptions{})
				if err != nil {
					t.Fatalf("recovery (shard %d, kill %d, torn %d): %v", victim, kill, torn, err)
				}
				defer re.Close()
				if re.NumShards() != p {
					t.Fatalf("recovered %d shards, want %d", re.NumShards(), p)
				}
				if torn > 0 && rec.TruncatedRecords() == 0 {
					t.Errorf("a torn frame was left on shard %d but recovery truncated nothing", victim)
				}
				if re.EpochKey() != wantEpoch || re.NumTuples() != wantTuples {
					t.Errorf("recovered store at %s/%d tuples, want %s/%d",
						re.EpochKey(), re.NumTuples(), wantEpoch, wantTuples)
				}
				for s := 0; s < p; s++ {
					if got := renderStoreState(t, cat, re.Shard(s)); got != want[s] {
						t.Errorf("shard %d diverges after recovery (victim %d, kill %d, torn %d)\n got:  %s\n want: %s",
							s, victim, kill, torn, got, want[s])
					}
				}
			})
		}
	}
}

// TestDurableTruncationSurfacesInMetrics recovers a store with exactly
// one torn WAL frame and requires the drop to surface both in the
// Recovery report and in the Prometheus exposition as
// bcq_wal_truncated_records_total.
func TestDurableTruncationSurfacesInMetrics(t *testing.T) {
	cat, acc, db := buildDurableScene(t)
	dir := filepath.Join(t.TempDir(), "store")
	dur, err := NewLiveDatabase(db, acc, LiveOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dur.Apply([]LiveOp{InsertOp("friends", Tuple{Str("u0"), Str("u1")})}); err != nil {
		t.Fatal(err)
	}
	dur.WAL().SetFailPoint(1, 9)
	_, err = dur.Apply([]LiveOp{InsertOp("friends", Tuple{Str("u0"), Str("u2")})})
	if !errors.Is(err, wal.ErrInjectedCrash) {
		t.Fatalf("expected injected crash, got %v", err)
	}

	re, rec, err := OpenLiveDatabase(dir, cat, acc, LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rec.TruncatedRecords != 1 || rec.ReplayedOps != 1 {
		t.Fatalf("recovery = %+v, want exactly 1 truncated record and 1 replayed op", rec)
	}

	reg := NewMetricsRegistry()
	re.Instrument(reg)
	expo := reg.Expose()
	if !strings.Contains(expo, "bcq_wal_truncated_records_total 1") {
		t.Errorf("exposition does not report the truncated frame:\n%s", grepLines(expo, "bcq_wal"))
	}
	if !strings.Contains(expo, "bcq_wal_replayed_records_total 1") {
		t.Errorf("exposition does not report the replayed record:\n%s", grepLines(expo, "bcq_wal"))
	}
}

// grepLines filters exposition text to the lines containing a substring
// (keeps failure output readable).
func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
