// Package bcq is a Go implementation of "Bounded Conjunctive Queries"
// (Cao, Fan, Wo, Yu — PVLDB 7(12), 2014): deciding whether an SPC
// (conjunctive) query can be answered by accessing a bounded amount of
// data under an access schema, and actually answering it that way.
//
// An access schema is a set of access constraints X → (Y, N): for every
// X-value there are at most N distinct corresponding Y-values, retrievable
// through an index at a cost independent of the database size. Under such
// a schema, many practical queries are effectively bounded — answerable
// exactly from a fraction of the data whose size depends only on the query
// and the schema, never on |D|.
//
// The package is a facade over the internal implementation:
//
//	cat, acc, _ := bcq.ParseDDL(schemaText)   // relations + access constraints
//	q, _ := bcq.ParseQuery(queryText, cat)    // SPC query (SQL-ish surface syntax)
//	a, _ := bcq.Analyze(cat, q, acc)
//	a.Bounded()                // Theorem 3 / algorithm BCheck
//	a.EffectivelyBounded()     // Theorem 4 / algorithm EBCheck
//	a.DominatingParameters(α)  // Section 4.3 / algorithm findDPh
//	p, _ := a.Plan()           // Section 5.1 / algorithm QPlan
//	res, _ := bcq.Execute(p, db) // evalDQ: bounded evaluation
//
// For serving workloads, the prepared-query engine folds the whole
// pipeline behind a plan cache and a parallel bounded executor:
//
//	eng, _ := bcq.NewEngine(cat, acc, db, bcq.EngineOptions{Parallelism: 4})
//	p, _ := eng.Prepare("select ... where album_id = ? and user_id = ?")
//	res, _ := p.Exec(bcq.Int(3), bcq.Int(74))  // no re-planning, bounded fetches
//
// Databases live in an in-memory storage engine (NewDatabase, Insert,
// BuildIndexes); the executors report how many tuples they touched, so the
// boundedness guarantee is observable.
//
// Index construction seals the database; to keep serving exact, bounded
// answers while ingesting writes, wrap it in the live layer. A live
// database applies Inserts/Deletes incrementally (copy-on-write on the
// touched index groups, no rebuilds), rejects or quarantines writes that
// would break D |= A — so every cached plan stays sound — and publishes
// each batch as a new immutable epoch; readers pin a snapshot and never
// block writers:
//
//	ld, _ := bcq.NewLiveDatabase(db, acc, bcq.LiveOptions{})
//	eng, _ := bcq.NewLiveEngine(ld, bcq.EngineOptions{Parallelism: 4})
//	p, _ := eng.Prepare("select ... where user_id = ?")
//	ld.Apply([]bcq.LiveOp{bcq.InsertOp("friends", t)})  // atomic batch
//	res, _ := p.Exec(bcq.Int(74))  // pins the snapshot current now
//
// To scale past one writer and one machine's worth of contention, shard
// the store: access constraints double as shard keys, so each relation
// is hash-partitioned on a constraint's X-attributes, probes
// scatter-gather to the shards owning their index groups (answers stay
// byte-identical to a single store), and writes commit shard-parallel:
//
//	ss, _ := bcq.NewShardedDatabase(db, acc, bcq.ShardOptions{Shards: 8})
//	eng, _ := bcq.NewShardedEngine(ss, bcq.EngineOptions{Parallelism: 8})
//	ss.Apply(batch)               // routed by content, committed shard-parallel
//	res, _ := p.Exec(bcq.Int(74)) // pins one epoch vector across all shards
//
// See the examples/ directory (examples/streaming for the live layer,
// examples/sharded for scale-out) and DESIGN.md for the full system map.
package bcq

import (
	"io"
	"time"

	"bcq/internal/baseline"
	"bcq/internal/core"
	"bcq/internal/engine"
	"bcq/internal/exec"
	"bcq/internal/live"
	"bcq/internal/obs"
	"bcq/internal/plan"
	"bcq/internal/schema"
	"bcq/internal/serve"
	"bcq/internal/shard"
	"bcq/internal/spc"
	"bcq/internal/stats"
	"bcq/internal/storage"
	"bcq/internal/value"
)

// Re-exported value types.
type (
	// Value is a scalar database value (null, int64 or string).
	Value = value.Value
	// Tuple is an ordered list of values.
	Tuple = value.Tuple
)

// Null is the null value; Int and Str construct scalars.
var Null = value.Null

// Int returns an integer value.
func Int(i int64) Value { return value.Int(i) }

// Str returns a string value.
func Str(s string) Value { return value.Str(s) }

// ParseValue parses a literal ("null", 42, 'text').
func ParseValue(s string) (Value, error) { return value.Parse(s) }

// Re-exported schema types.
type (
	// Relation is one relation schema.
	Relation = schema.Relation
	// Catalog is a relational schema (a set of relation schemas).
	Catalog = schema.Catalog
	// AccessConstraint is one constraint X → (Y, N) on a relation.
	AccessConstraint = schema.AccessConstraint
	// AccessSchema is a set of access constraints.
	AccessSchema = schema.AccessSchema
)

// NewRelation builds a relation schema.
func NewRelation(name string, attrs ...string) (*Relation, error) {
	return schema.NewRelation(name, attrs...)
}

// NewCatalog builds a catalog from relation schemas.
func NewCatalog(rels ...*Relation) (*Catalog, error) { return schema.NewCatalog(rels...) }

// NewAccessConstraint builds one access constraint X → (Y, N).
func NewAccessConstraint(rel string, x, y []string, n int64) (AccessConstraint, error) {
	return schema.NewAccessConstraint(rel, x, y, n)
}

// NewAccessSchema builds an access schema.
func NewAccessSchema(constraints ...AccessConstraint) (*AccessSchema, error) {
	return schema.NewAccessSchema(constraints...)
}

// ParseDDL parses the schema description language:
//
//	relation in_album(photo_id, album_id)
//	constraint in_album: (album_id) -> (photo_id, 1000)
func ParseDDL(src string) (*Catalog, *AccessSchema, error) { return schema.ParseDDL(src) }

// Re-exported query types.
type (
	// Query is an SPC (conjunctive) query.
	Query = spc.Query
	// AttrRef identifies an attribute occurrence S_i[A] of a query.
	AttrRef = spc.AttrRef
)

// ParseQuery parses the SQL-ish SPC surface syntax:
//
//	select t1.photo_id from in_album as t1, tagging as t3
//	where t1.album_id = 'a0' and t1.photo_id = t3.photo_id
//
// Placeholders ("attr = ?") declare parameterized-query slots.
func ParseQuery(src string, cat *Catalog) (*Query, error) { return spc.Parse(src, cat) }

// Analysis bundles a validated query with its access schema; all four of
// the paper's decision algorithms hang off it.
type Analysis struct {
	an *core.Analysis
}

// Re-exported analysis result types.
type (
	// BoundedResult answers Bnd(Q, A).
	BoundedResult = core.BoundedResult
	// EBResult answers EBnd(Q, A).
	EBResult = core.EBResult
	// DPResult answers DP/MDP(Q, A).
	DPResult = core.DPResult
	// MBoundedResult answers the M-boundedness question (Section 5.2).
	MBoundedResult = core.MBoundedResult
)

// Analyze validates the query against the catalog and prepares the shared
// machinery (Σ_Q closure, actualized constraints).
func Analyze(cat *Catalog, q *Query, a *AccessSchema) (*Analysis, error) {
	an, err := core.NewAnalysis(cat, q, a)
	if err != nil {
		return nil, err
	}
	return &Analysis{an: an}, nil
}

// Bounded decides whether the query is bounded under the access schema
// (algorithm BCheck, O(|Q|(|A|+|Q|))).
func (a *Analysis) Bounded() BoundedResult { return a.an.BCheck() }

// EffectivelyBounded decides whether the query is effectively bounded
// (algorithm EBCheck, O(|Q|(|A|+|Q|))).
func (a *Analysis) EffectivelyBounded() EBResult { return a.an.EBCheck() }

// DominatingParameters searches for a minimum set of parameters whose
// instantiation makes the query effectively bounded (heuristic findDPh;
// the exact problem is NP-complete).
func (a *Analysis) DominatingParameters(alpha float64) DPResult { return a.an.FindDPh(alpha) }

// ExactMinDominatingParameters solves MDP exactly by exhaustive search;
// exponential, gated by maxCandidates (0 = default 20).
func (a *Analysis) ExactMinDominatingParameters(alpha float64, maxCandidates int) (DPResult, error) {
	return a.an.ExactMinDP(alpha, maxCandidates)
}

// MBounded decides effective M-boundedness exactly (NP-complete; gated by
// maxActs, 0 = default 18) and reports the optimal fetch bound.
func (a *Analysis) MBounded(m int64, maxActs int) (MBoundedResult, error) {
	return a.an.ExactMBounded(m, maxActs)
}

// Re-exported planning types.
type (
	// Plan is a bounded query plan.
	Plan = plan.Plan
	// ExplainOptions tunes Plan.ExplainOpts: cost estimates and/or the
	// actual per-step access counts of a finished execution.
	ExplainOptions = plan.ExplainOptions
	// PlanActuals carries an execution's per-step access counts into
	// ExplainOptions (build one from Result.StepStats / VerifyStats).
	PlanActuals = plan.Actuals
	// StepAccess is one plan operation's actual probe and fetch counts.
	StepAccess = plan.StepAccess
)

// Plan generates a bounded query plan (algorithm QPlan). It fails with a
// *plan.NotEffectivelyBoundedError when the query is not effectively
// bounded.
func (a *Analysis) Plan() (*Plan, error) { return plan.QPlan(a.an) }

// OptimizedPlan generates a cost-based bounded query plan: same
// guarantees as Plan, but the fetch order and retrieval witnesses are
// chosen to minimize expected tuples fetched under the given cardinality
// statistics (nil falls back to the declared bounds N). Obtain a
// snapshot from Database.CardStats, LiveDatabase.CardStats,
// ShardedDatabase.CardStats or Engine.CardStats.
func (a *Analysis) OptimizedPlan(cs *CardStats) (*Plan, error) { return plan.Optimize(a.an, cs) }

// GreedyPlan generates a cost-based bounded query plan using only the
// greedy ordering heuristic — no branch-and-bound search — so planning
// latency stays flat as query shapes grow. Same soundness guarantees as
// OptimizedPlan; the chosen order may fetch more tuples. This is the
// plan tier a tiered engine serves on a cold prepare.
func (a *Analysis) GreedyPlan(cs *CardStats) (*Plan, error) { return plan.OptimizeGreedy(a.an, cs) }

// PlanTier identifies how a plan's fetch order was chosen: naive
// derivation order, the greedy heuristic, or the full optimizer.
type PlanTier = plan.Tier

// Plan tier values (Plan.Tier).
const (
	TierNaive     = plan.TierNaive
	TierGreedy    = plan.TierGreedy
	TierOptimized = plan.TierOptimized
)

// AnnotateEstimates fills a plan's per-step and total cost estimates
// from cardinality statistics without changing its structure — for
// rendering naive and cost-based plans on one scale.
func AnnotateEstimates(p *Plan, cs *CardStats) { plan.AnnotateEstimates(p, cs) }

// Re-exported cardinality-statistics types: the cost model's input,
// produced by every store and maintained incrementally through live
// ingest and sharded commits.
type (
	// CardStats is one store's cardinality snapshot (per-relation rows,
	// per-constraint index shape).
	CardStats = stats.Snapshot
	// RelCard is one relation's cardinality statistics.
	RelCard = stats.RelCard
	// ACCard is one access constraint's observed index shape.
	ACCard = stats.ACCard
)

// Re-exported storage types.
type (
	// Database is the in-memory storage engine.
	Database = storage.Database
	// Stats counts storage accesses.
	Stats = storage.Stats
)

// NewDatabase creates an empty database over a catalog.
func NewDatabase(cat *Catalog) *Database { return storage.NewDatabase(cat) }

// ErrSealed matches (errors.Is) inserts rejected because the database was
// sealed by index construction; mutate through a live database instead.
var ErrSealed = storage.ErrSealed

// Store is the read surface bounded evaluation runs against: a sealed
// *Database or a pinned *LiveSnapshot.
type Store = exec.Store

// Result is a bounded-evaluation answer with access statistics.
type Result = exec.Result

// Execute runs a bounded plan against a database (evalDQ). The database
// must have indexes built for the plan's access schema
// (db.BuildIndexes(acc)).
func Execute(p *Plan, db *Database) (*Result, error) { return exec.Run(p, db) }

// ExecuteOn is Execute against any store — in particular a pinned live
// snapshot, which evaluates in full isolation from concurrent writes.
func ExecuteOn(p *Plan, st Store) (*Result, error) { return exec.Run(p, st) }

// ExecuteParallel is Execute with the plan's index probes fanned out over
// a bounded pool of parallelism workers. Results are byte-identical to
// Execute; the database must be sealed (BuildIndexes does that).
func ExecuteParallel(p *Plan, db *Database, parallelism int) (*Result, error) {
	return exec.New(parallelism).Run(p, db)
}

// Re-exported streaming-execution types.
type (
	// Stream is a pull-based bounded answer stream: Next yields answers
	// as the fetch/verify fixpoint produces them, holding O(batch)
	// per-request state instead of materializing Q(D). Every emitted
	// tuple is a true answer (candidate growth is monotone), and a
	// drained stream has produced exactly Q(D). Streams are
	// single-goroutine; Execute and ExecuteParallel are thin consumers
	// of this same core.
	Stream = exec.Stream
	// StreamOptions tunes a stream: Limit > 0 stops fetching as soon as
	// that many distinct answers exist (early termination); BatchSize
	// sets the per-wave fetch granularity.
	StreamOptions = exec.StreamOptions
)

// ExecuteStream opens a pull-based answer stream for a bounded plan over
// any store. No data is fetched until the first Next call.
func ExecuteStream(p *Plan, st Store, opts StreamOptions) *Stream {
	return exec.OpenStream(p, st, opts)
}

// Re-exported prepared-query engine types.
type (
	// Engine is a long-lived prepared-query service over one database:
	// parse → analyze → plan runs once per query shape (LRU plan cache),
	// bounded execution runs per request.
	Engine = engine.Engine
	// Prepared is a cached query plan ready for repeated execution.
	Prepared = engine.Prepared
	// EngineOptions tunes the plan cache and executor parallelism.
	EngineOptions = engine.Options
	// EngineStats exposes the engine counters (prepares, cache hits,
	// misses, evictions, executions, background plan upgrades).
	EngineStats = engine.Stats
	// PlanMode selects the engine's cold-prepare planning tier
	// (EngineOptions.PlanMode).
	PlanMode = engine.PlanMode
)

// Engine planning modes: full optimization on every cold prepare (the
// default), greedy-only, or greedy-first with background upgrade to the
// optimized tier.
const (
	PlanModeOptimized = engine.PlanOptimized
	PlanModeGreedy    = engine.PlanGreedy
	PlanModeTiered    = engine.PlanTiered
)

// NewEngine builds a prepared-query engine over a loaded database. It
// builds any missing access indexes (verifying D |= A) and seals the
// database; afterwards the engine may serve queries from any number of
// goroutines.
func NewEngine(cat *Catalog, acc *AccessSchema, db *Database, opts EngineOptions) (*Engine, error) {
	return engine.New(cat, acc, db, opts)
}

// Re-exported live-layer types.
type (
	// LiveDatabase is the mutable layer over a sealed database:
	// epoch-versioned snapshots, incremental index maintenance, writes
	// checked against the access schema so D |= A stays invariant.
	LiveDatabase = live.Store
	// LiveSnapshot is one pinned epoch: an immutable consistent view that
	// bounded evaluation runs against.
	LiveSnapshot = live.Snapshot
	// LiveOp is one write operation of an atomic batch.
	LiveOp = live.Op
	// LiveOptions tunes a live database (violation mode).
	LiveOptions = live.Options
	// LiveMode selects how schema-violating writes are treated.
	LiveMode = live.Mode
	// LiveIngestStats counts a live database's write-side activity.
	LiveIngestStats = live.IngestStats
	// LiveQuarantined is one op a permissive live database refused.
	LiveQuarantined = live.Quarantined
)

// Live violation modes: LiveStrict rejects a whole batch on the first
// violating op; LivePermissive quarantines violators and commits the rest.
const (
	LiveStrict     = live.Strict
	LivePermissive = live.Permissive
)

// ErrLiveBound matches (errors.Is) writes rejected because they would
// push an access-constraint group past its bound, breaking D |= A.
var ErrLiveBound = live.ErrBound

// ErrLiveNoSuchTuple matches (errors.Is) deletes whose target tuple has
// no live occurrence.
var ErrLiveNoSuchTuple = live.ErrNoSuchTuple

// InsertOp builds an insert op for LiveDatabase.Apply.
func InsertOp(rel string, t Tuple) LiveOp { return live.Insert(rel, t) }

// DeleteOp builds a delete op for LiveDatabase.Apply.
func DeleteOp(rel string, t Tuple) LiveOp { return live.Delete(rel, t) }

// NewLiveDatabase wraps a loaded database in the live layer. Missing
// access indexes are built (verifying D |= A) and the base is sealed; the
// one-time bootstrap also records the per-pair bookkeeping that makes
// every subsequent write incremental. Use Apply/Insert/Delete to write,
// Snapshot to pin a read view, and NewLiveEngine to serve queries.
func NewLiveDatabase(db *Database, acc *AccessSchema, opts LiveOptions) (*LiveDatabase, error) {
	return live.New(db, acc, opts)
}

// NewLiveEngine builds a prepared-query engine over a live database:
// every execution pins the current snapshot, so answers stay exact and
// bounded while writes stream in.
func NewLiveEngine(ld *LiveDatabase, opts EngineOptions) (*Engine, error) {
	return engine.NewLive(ld, opts)
}

// LiveRecovery reports what OpenLiveDatabase did to bring a durable
// store back: the checkpoint it resumed from, the WAL tail it replayed,
// and the torn records it dropped.
type LiveRecovery = live.Recovery

// OpenLiveDatabase recovers a durable live database from a directory
// (or creates a fresh one over an empty base when the directory holds no
// store state). Pair it with LiveOptions.Dir on NewLiveDatabase, which
// seeds a durable store from loaded data; Close checkpoints and closes
// the WAL so a clean restart replays zero records.
func OpenLiveDatabase(dir string, cat *Catalog, acc *AccessSchema, opts LiveOptions) (*LiveDatabase, *LiveRecovery, error) {
	return live.Open(dir, cat, acc, opts)
}

// Re-exported sharding types.
type (
	// ShardedDatabase partitions one database into P shards, each its own
	// live store: probes route to the shard owning their index group,
	// writes commit shard-parallel, and scatter-gather execution is
	// byte-identical to a single store.
	ShardedDatabase = shard.Store
	// ShardedView is one atomically pinned epoch vector — an immutable,
	// consistent cut across every shard that bounded evaluation runs
	// against (it is a Store).
	ShardedView = shard.View
	// ShardOptions tunes a sharded database (partition count, violation
	// mode).
	ShardOptions = shard.Options
)

// NewShardedDatabase partitions a loaded database into opts.Shards
// shards. Each relation is hash-partitioned on the X-attributes of an
// anchor access constraint (one whose X every other constraint on the
// relation contains), which keeps every index group whole on one shard —
// the property that makes sharded execution exact and per-shard admission
// checking globally sound. Relations without such an anchor are pinned to
// one shard; relations without constraints are round-robined.
func NewShardedDatabase(db *Database, acc *AccessSchema, opts ShardOptions) (*ShardedDatabase, error) {
	return shard.New(db, acc, opts)
}

// NewShardedEngine builds a prepared-query engine over a sharded
// database: every execution pins one consistent epoch vector across all
// shards and fans its bounded probes out shard by shard, while ingest
// scales with the shard count.
func NewShardedEngine(ss *ShardedDatabase, opts EngineOptions) (*Engine, error) {
	return engine.NewSharded(ss, opts)
}

// ShardRecovery reports what OpenShardedDatabase did per shard to bring
// a durable sharded store back.
type ShardRecovery = shard.Recovery

// ErrShardMismatch matches (errors.Is) an OpenShardedDatabase whose
// ShardOptions.Shards disagrees with the directory's manifest (leave
// Shards zero to accept the manifest's count).
var ErrShardMismatch = shard.ErrShardMismatch

// OpenShardedDatabase recovers a durable sharded database: each shard
// recovers its newest valid checkpoint and replays its WAL tail in
// parallel, the manifest restores the partition placements, and a schema
// extension torn mid-commit is healed to the union of what any shard
// durably holds. Pair it with ShardOptions.Dir on NewShardedDatabase,
// which seeds a durable store from loaded data; Close checkpoints every
// shard so a clean restart replays zero records.
func OpenShardedDatabase(dir string, cat *Catalog, acc *AccessSchema, opts ShardOptions) (*ShardedDatabase, *ShardRecovery, error) {
	return shard.Open(dir, cat, acc, opts)
}

// Re-exported serving-layer types.
type (
	// QueryServer is the HTTP/JSON serving layer over an engine: a worker
	// pool with backpressure and per-request deadlines multiplexes
	// concurrent clients onto the bounded executor, and an epoch-keyed
	// result cache serves hot queries without re-execution — never stale,
	// because live writes change the cache key (the snapshot epoch) rather
	// than racing an invalidation. Endpoints: /query, /prepare, /ingest,
	// /stats, /healthz. See cmd/bqserve and examples/serving.
	QueryServer = serve.Server
	// ServeOptions tunes the worker pool, queue bound, default deadline,
	// result cache, and the ingest/metrics wiring.
	ServeOptions = serve.Options
	// ServeCacheStats is the result cache's hit/miss counter snapshot.
	ServeCacheStats = serve.CacheStats
	// StoreMetrics is the observability surface /stats reads; Database,
	// LiveDatabase and ShardedDatabase all satisfy it.
	StoreMetrics = serve.StoreMetrics
)

// NewQueryServer builds the serving layer over an engine. Wire
// ServeOptions.Ingest to the live or sharded store's Apply to enable
// /ingest, and ServeOptions.Metrics to the store for /stats.
func NewQueryServer(eng *Engine, opts ServeOptions) (*QueryServer, error) {
	return serve.New(eng, opts)
}

// Re-exported observability types (internal/obs): a dependency-free
// metrics registry with Prometheus text exposition, per-query span
// tracing, and a sampling slow-query log. Share one registry across the
// engine (EngineOptions.Metrics), the store (Instrument) and the server
// (ServeOptions.Obs) so a single GET /metrics scrape covers request
// latency, plan/result caches, executor waves and probes, per-shard
// fan-out, ingest throughput and epoch freshness.
type (
	// MetricsRegistry holds metric families and renders them in
	// Prometheus text exposition format (Handler serves GET /metrics).
	MetricsRegistry = obs.Registry
	// Observer bundles the serving layer's observability handles.
	Observer = obs.Observer
	// Trace is one request's span tree; mint with NewTrace, render with
	// Tree/JSON, or let Prepared.ExecTrace record into it.
	Trace = obs.Trace
	// TraceSpan is one timed operation in a trace.
	TraceSpan = obs.Span
	// SlowQueryLog records sampled slow queries as JSON lines.
	SlowQueryLog = obs.SlowLog
	// TimeSeries retains windowed metric history — counter rates, gauge
	// readings, delta-window histogram quantiles — in fixed-size rings
	// (GET /debug/timeseries).
	TimeSeries = obs.TimeSeries
	// TimeSeriesOptions tunes the sampler's interval, window and series cap.
	TimeSeriesOptions = obs.TimeSeriesOptions
	// TraceRecorder tail-samples span trees: complete traces are retained
	// only for slow, errored or outlier-vs-rolling-p99 queries
	// (GET /debug/traces/{id}).
	TraceRecorder = obs.TraceRecorder
	// TraceRecorderOptions tunes the recorder's capacity and retention
	// criteria.
	TraceRecorderOptions = obs.TraceRecorderOptions
	// RetainedTrace is one trace the recorder kept: metadata, retention
	// reasons and the span tree.
	RetainedTrace = obs.RetainedTrace
	// SLOMonitor evaluates latency and error SLOs over short and long
	// burn-rate windows; its verdict folds into GET /healthz.
	SLOMonitor = obs.SLO
	// SLOOptions declares the SLO thresholds, budgets and windows.
	SLOOptions = obs.SLOOptions
	// SLOVerdict is one burn-rate evaluation: degraded or not, with both
	// windows' rates per SLO.
	SLOVerdict = obs.SLOVerdict
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTrace builds a trace with the given ID ("" mints one) and root span
// name.
func NewTrace(id, rootName string) *Trace { return obs.NewTrace(id, rootName) }

// NewSlowQueryLog builds a slow-query log writing JSON lines to w:
// queries at or above threshold qualify, and 1-in-sampleN qualifying
// queries are written (sampleN ≤ 1 writes every one).
func NewSlowQueryLog(w io.Writer, threshold time.Duration, sampleN int) *SlowQueryLog {
	return obs.NewSlowLog(w, threshold, sampleN)
}

// NewSlowQueryLogFile builds a slow-query log appending to path,
// rotating by rename-and-truncate (path → path+".1") when the file
// would exceed maxBytes (0 = never rotate), so on-disk size stays
// bounded at roughly 2× maxBytes.
func NewSlowQueryLogFile(path string, threshold time.Duration, sampleN int, maxBytes int64) (*SlowQueryLog, error) {
	return obs.NewSlowLogFile(path, threshold, sampleN, maxBytes)
}

// NewTimeSeries builds a metric-history sampler over a registry; Start
// launches its ticker, Stop ends it.
func NewTimeSeries(reg *MetricsRegistry, opts TimeSeriesOptions) *TimeSeries {
	return obs.NewTimeSeries(reg, opts)
}

// NewTraceRecorder builds a tail-sampling trace ring. Wire it into
// EngineOptions.Recorder (feeds the rolling p99) and Observer.Traces
// (serves /debug/traces).
func NewTraceRecorder(opts TraceRecorderOptions) *TraceRecorder {
	return obs.NewTraceRecorder(opts)
}

// NewSLOMonitor builds a burn-rate monitor. Wire it into
// Observer.SLO so the serving layer records work-endpoint requests and
// /healthz carries the verdict.
func NewSLOMonitor(opts SLOOptions) *SLOMonitor { return obs.NewSLO(opts) }

// BaselineResult is a full-data evaluation answer.
type BaselineResult = baseline.Result

// BaselineOptions configures the conventional evaluators.
type BaselineOptions = baseline.Options

// ExecuteBaseline evaluates the query over the full database with a
// conventional hash join — the comparison point for bounded evaluation.
func ExecuteBaseline(a *Analysis, db *Database, opts BaselineOptions) (*BaselineResult, error) {
	return baseline.HashJoin(a.an.Closure, db, opts)
}

// ExecuteBaselineIndexLoop evaluates with an index-nested-loop join
// (the paper's "MySQL with the indices of A" stand-in).
func ExecuteBaselineIndexLoop(a *Analysis, db *Database, opts BaselineOptions) (*BaselineResult, error) {
	return baseline.IndexLoop(a.an.Closure, db, opts)
}
