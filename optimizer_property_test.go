// Property test for the cost-based optimizer (run with -race in CI):
// for querygen-driven bounded CQs over the generated datasets, the
// cost-ordered plan must return byte-identical answers to the naive
// QPlan order and must never fetch more tuples — reordering and witness
// choice are performance moves, never semantic ones.
package bcq

import (
	"fmt"
	"testing"

	"bcq/internal/datagen"
	"bcq/internal/plan"
	"bcq/internal/querygen"
)

// optimizerSeeds drives query generation beyond the default workload:
// the generator is deterministic per seed, so this is a reproducible
// fuzz corpus, not a flaky one. Seeds whose workload fails to generate
// (the generator can paint itself into a corner on non-default seeds)
// are skipped.
var optimizerSeeds = []int64{querygen.Seed, 7, 1234, 99}

func TestCostOrderedNeverFetchesMoreThanNaive(t *testing.T) {
	type cse struct {
		ds    *datagen.Dataset
		scale float64
	}
	cases := []cse{{datagen.TFACC(), 1.0 / 16}, {datagen.MOT(), 1.0 / 16}}
	if !testing.Short() {
		cases = append(cases, cse{datagen.TPCH(), 1.0 / 16})
	}
	for _, c := range cases {
		t.Run(c.ds.Name, func(t *testing.T) {
			db, err := c.ds.Build(c.scale)
			if err != nil {
				t.Fatal(err)
			}
			cs := db.CardStats()
			checked := 0
			for _, seed := range optimizerSeeds {
				ws, err := querygen.Workload(c.ds, seed)
				if err != nil {
					if seed == querygen.Seed {
						t.Fatal(err)
					}
					continue
				}
				for _, w := range ws {
					a, err := Analyze(c.ds.Catalog, w.Query, c.ds.Access)
					if err != nil {
						t.Fatal(err)
					}
					naive, err := a.Plan()
					if err != nil {
						if _, ok := err.(*plan.NotEffectivelyBoundedError); ok {
							// The optimizer must agree on the verdict.
							if _, oerr := a.OptimizedPlan(&cs); oerr == nil {
								t.Errorf("seed %d %s: naive rejects as not EB, optimizer plans it", seed, w.Query.Name)
							}
							continue
						}
						t.Fatal(err)
					}
					opt, err := a.OptimizedPlan(&cs)
					if err != nil {
						t.Fatalf("seed %d %s: naive plans, optimizer errors: %v", seed, w.Query.Name, err)
					}

					// Parallel execution keeps the -race run meaningful.
					resN, err := ExecuteParallel(naive, db, 2)
					if err != nil {
						t.Fatal(err)
					}
					resO, err := ExecuteParallel(opt, db, 2)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprintf("%v|%v", resN.Cols, resN.Tuples) != fmt.Sprintf("%v|%v", resO.Cols, resO.Tuples) {
						t.Errorf("seed %d %s: answers diverged\n naive: %d tuples\n cost:  %d tuples\nnaive plan:\n%s\ncost plan:\n%s",
							seed, w.Query.Name, len(resN.Tuples), len(resO.Tuples), naive.Explain(), opt.Explain())
						continue
					}
					if resO.Stats.TuplesFetched > resN.Stats.TuplesFetched {
						t.Errorf("seed %d %s: cost-ordered fetched %d > naive %d\nnaive plan:\n%s\ncost plan:\n%s",
							seed, w.Query.Name, resO.Stats.TuplesFetched, resN.Stats.TuplesFetched, naive.Explain(), opt.Explain())
					}
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("no effectively bounded queries checked")
			}
			t.Logf("checked %d (seed, query) pairs", checked)
		})
	}
}

// TestGreedyTierMatchesOptimized is the tier-equivalence sweep for the
// tiered planner: over the same querygen corpus, the greedy tier (what a
// tiered engine serves on a cold prepare, and what executions see in the
// mid-upgrade window) must return byte-identical answers to both the
// naive and the fully optimized plan, stay within the declared
// worst-case fetch bound when it is finite, and carry the right tier
// tags — so a background plan swap can never change an answer, only the
// fetch count.
func TestGreedyTierMatchesOptimized(t *testing.T) {
	type cse struct {
		ds    *datagen.Dataset
		scale float64
	}
	cases := []cse{{datagen.TFACC(), 1.0 / 16}, {datagen.MOT(), 1.0 / 16}}
	if !testing.Short() {
		cases = append(cases, cse{datagen.TPCH(), 1.0 / 16})
	}
	for _, c := range cases {
		t.Run(c.ds.Name, func(t *testing.T) {
			db, err := c.ds.Build(c.scale)
			if err != nil {
				t.Fatal(err)
			}
			cs := db.CardStats()
			checked := 0
			for _, seed := range optimizerSeeds {
				ws, err := querygen.Workload(c.ds, seed)
				if err != nil {
					if seed == querygen.Seed {
						t.Fatal(err)
					}
					continue
				}
				for _, w := range ws {
					a, err := Analyze(c.ds.Catalog, w.Query, c.ds.Access)
					if err != nil {
						t.Fatal(err)
					}
					naive, err := a.Plan()
					if err != nil {
						if _, ok := err.(*plan.NotEffectivelyBoundedError); ok {
							// The greedy tier must agree on the EB verdict too.
							if _, gerr := a.GreedyPlan(&cs); gerr == nil {
								t.Errorf("seed %d %s: naive rejects as not EB, greedy tier plans it", seed, w.Query.Name)
							}
							continue
						}
						t.Fatal(err)
					}
					greedy, err := a.GreedyPlan(&cs)
					if err != nil {
						t.Fatalf("seed %d %s: naive plans, greedy tier errors: %v", seed, w.Query.Name, err)
					}
					opt, err := a.OptimizedPlan(&cs)
					if err != nil {
						t.Fatalf("seed %d %s: naive plans, optimizer errors: %v", seed, w.Query.Name, err)
					}
					if greedy.Tier != TierGreedy {
						t.Fatalf("seed %d %s: greedy plan tagged %q", seed, w.Query.Name, greedy.Tier)
					}
					if opt.Tier != TierOptimized {
						t.Fatalf("seed %d %s: optimized plan tagged %q", seed, w.Query.Name, opt.Tier)
					}

					resN, err := ExecuteParallel(naive, db, 2)
					if err != nil {
						t.Fatal(err)
					}
					resG, err := ExecuteParallel(greedy, db, 2)
					if err != nil {
						t.Fatal(err)
					}
					resO, err := ExecuteParallel(opt, db, 2)
					if err != nil {
						t.Fatal(err)
					}
					keyN := fmt.Sprintf("%v|%v", resN.Cols, resN.Tuples)
					if keyG := fmt.Sprintf("%v|%v", resG.Cols, resG.Tuples); keyG != keyN {
						t.Errorf("seed %d %s: greedy answers diverged from naive\ngreedy plan:\n%s", seed, w.Query.Name, greedy.Explain())
						continue
					}
					if keyO := fmt.Sprintf("%v|%v", resO.Cols, resO.Tuples); keyO != keyN {
						t.Errorf("seed %d %s: optimized answers diverged from naive", seed, w.Query.Name)
						continue
					}
					// The greedy order is still a bounded plan: its actual
					// fetch volume respects the declared worst-case bound.
					if fb := greedy.FetchBound; !fb.IsUnbounded() && resG.Stats.TuplesFetched > fb.Int64() {
						t.Errorf("seed %d %s: greedy fetched %d > declared bound %s\nplan:\n%s",
							seed, w.Query.Name, resG.Stats.TuplesFetched, fb, greedy.Explain())
					}
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("no effectively bounded queries checked")
			}
			t.Logf("checked %d (seed, query) pairs across three tiers", checked)
		})
	}
}
