// Property tests for the live layer's two contracts under concurrency
// (run them with -race):
//
//  1. Snapshot isolation: a result computed while writers churn is
//     byte-identical to evaluating on the pinned snapshot alone — both
//     to re-running on the same pin later and to running on a sealed
//     database rebuilt from the pin's contents.
//  2. Bounded access: a bounded query's tuple-access count stays exactly
//     flat while |D| grows through live inserts.
package bcq

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

const liveTestDDL = `
relation in_album(photo_id, album_id)
relation friends(user_id, friend_id)
relation tagging(photo_id, tagger_id, taggee_id)

constraint in_album: (album_id) -> (photo_id, 1000)
constraint friends: (user_id) -> (friend_id, 5000)
constraint tagging: (photo_id, taggee_id) -> (tagger_id, 1)
`

const liveTestQuery = `
query Q0:
select t1.photo_id
from in_album as t1, friends as t2, tagging as t3
where t1.album_id = ? and t2.user_id = ?
  and t1.photo_id = t3.photo_id
  and t3.tagger_id = t2.friend_id
  and t3.taggee_id = t2.user_id
`

// seedLiveScene loads a deterministic social scene: nAlbums albums of 6
// photos, nUsers users with 4 friends, each photo tagged once.
func seedLiveScene(t testing.TB, nAlbums, nUsers int) (*LiveDatabase, *Engine, *Prepared) {
	t.Helper()
	cat, acc, err := ParseDDL(liveTestDDL)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(cat)
	rng := rand.New(rand.NewSource(1))
	ins := func(rel string, vals ...string) {
		t.Helper()
		tu := make(Tuple, len(vals))
		for i, v := range vals {
			tu[i] = Str(v)
		}
		if err := db.Insert(rel, tu); err != nil {
			t.Fatal(err)
		}
	}
	user := func(i int) string { return fmt.Sprintf("u%d", i) }
	for a := 0; a < nAlbums; a++ {
		for p := 0; p < 6; p++ {
			photo := fmt.Sprintf("a%dp%d", a, p)
			ins("in_album", photo, fmt.Sprintf("a%d", a))
			taggee := user(rng.Intn(nUsers))
			ins("tagging", photo, user(rng.Intn(nUsers)), taggee)
		}
	}
	for u := 0; u < nUsers; u++ {
		for f := 0; f < 4; f++ {
			ins("friends", user(u), user(rng.Intn(nUsers)))
		}
	}

	ld, err := NewLiveDatabase(db, acc, LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewLiveEngine(ld, EngineOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	prep, err := eng.Prepare(liveTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	return ld, eng, prep
}

func renderLiveResult(r *Result) string {
	return fmt.Sprintf("cols=%v tuples=%v stats=%+v dq=%d", r.Cols, r.Tuples, r.Stats, r.DQSize)
}

// TestLiveSnapshotIsolationUnderConcurrentIngest churns writers (fresh
// inserts, duplicates, deletes of own earlier inserts) while readers pin
// snapshots and execute a prepared query. Every reader requires its
// result to be byte-identical (answers, per-result access stats, |D_Q|)
// to (a) re-executing on the same pinned snapshot and (b) executing on a
// sealed database frozen from that snapshot.
func TestLiveSnapshotIsolationUnderConcurrentIngest(t *testing.T) {
	const (
		nAlbums  = 12
		nUsers   = 8
		writers  = 2
		batches  = 60
		readers  = 3
		readIter = 40
	)
	ld, _, prep := seedLiveScene(t, nAlbums, nUsers)

	var wg sync.WaitGroup
	writersDone := make(chan struct{})

	// Writers own disjoint keyspaces (photos/albums prefixed w{id}), so
	// every batch is schema-valid and every delete target exists: Apply
	// must never fail.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var mine [][2]string // (rel, photo) tuples this writer can delete
			for b := 0; b < batches; b++ {
				var ops []LiveOp
				for i := 0; i < 8; i++ {
					photo := fmt.Sprintf("w%dp%d_%d", w, b, i)
					album := fmt.Sprintf("w%da%d", w, rng.Intn(4))
					ops = append(ops, InsertOp("in_album", Tuple{Str(photo), Str(album)}))
					ops = append(ops, InsertOp("tagging", Tuple{Str(photo), Str(fmt.Sprintf("u%d", rng.Intn(nUsers))), Str(fmt.Sprintf("u%d", rng.Intn(nUsers)))}))
					mine = append(mine, [2]string{photo, album})
				}
				// Duplicate a base tuple (never violates), and sometimes
				// retire an earlier own insert (exercises re-witnessing).
				ops = append(ops, InsertOp("friends", Tuple{Str("u0"), Str("u1")}))
				if len(mine) > 4 && rng.Intn(2) == 0 {
					victim := mine[0]
					mine = mine[1:]
					ops = append(ops, DeleteOp("in_album", Tuple{Str(victim[0]), Str(victim[1])}))
				}
				if _, err := ld.Apply(ops); err != nil {
					t.Errorf("writer %d batch %d: %v", w, b, err)
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(writersDone)
	}()

	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < readIter; i++ {
				album := Str(fmt.Sprintf("a%d", rng.Intn(nAlbums)))
				user := Str(fmt.Sprintf("u%d", rng.Intn(nUsers)))
				snap := ld.Snapshot()
				res, err := prep.ExecOn(snap, album, user)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				// Re-evaluate on the same pin while writers advance.
				again, err := prep.ExecOn(snap, album, user)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if got, want := renderLiveResult(again), renderLiveResult(res); got != want {
					t.Errorf("reader %d: pinned snapshot re-evaluation diverged\n first:  %s\n second: %s", r, want, got)
					return
				}
				if i%8 == 0 {
					frozen, err := snap.Freeze()
					if err != nil {
						t.Errorf("reader %d: freeze: %v", r, err)
						return
					}
					ref, err := prep.ExecOn(frozen, album, user)
					if err != nil {
						t.Errorf("reader %d: frozen run: %v", r, err)
						return
					}
					if got, want := renderLiveResult(res), renderLiveResult(ref); got != want {
						t.Errorf("reader %d: live snapshot diverges from rebuilt database\n live:   %s\n frozen: %s", r, got, want)
						return
					}
				}
			}
		}(r)
	}
	rg.Wait()
	<-writersDone

	if errs := ld.Quarantine(); len(errs) != 0 {
		t.Fatalf("strict store quarantined %d ops", len(errs))
	}
}

// TestLiveBoundedAccessStaysFlatAsDGrows checks contract (b): with the
// query's answer fixed, growing |D| by an order of magnitude through
// live inserts (duplicates plus fresh tuples in unrelated groups) leaves
// the per-evaluation tuple-access count exactly unchanged.
func TestLiveBoundedAccessStaysFlatAsDGrows(t *testing.T) {
	ld, _, prep := seedLiveScene(t, 8, 6)
	album, user := Str("a1"), Str("u3")

	first, err := prep.Exec(album, user)
	if err != nil {
		t.Fatal(err)
	}
	d0 := ld.Snapshot().NumTuples()

	rng := rand.New(rand.NewSource(7))
	base := ld.Base()
	rel := base.MustRelation("friends")
	for round := 1; round <= 4; round++ {
		var ops []LiveOp
		// Duplicates of base friendships...
		for i := 0; i < 2*int(d0); i++ {
			ops = append(ops, InsertOp("friends", rel.Tuples[rng.Intn(len(rel.Tuples))]))
		}
		// ...and fresh tuples in groups the query never touches.
		for i := 0; i < 64; i++ {
			photo := fmt.Sprintf("growth%d_%d", round, i)
			ops = append(ops, InsertOp("in_album", Tuple{Str(photo), Str("growth-album")}))
		}
		for lo := 0; lo < len(ops); lo += 128 {
			hi := min(lo+128, len(ops))
			if _, err := ld.Apply(ops[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}

		res, err := prep.Exec(album, user)
		if err != nil {
			t.Fatal(err)
		}
		dn := ld.Snapshot().NumTuples()
		if res.Stats.TuplesFetched != first.Stats.TuplesFetched ||
			res.Stats.IndexLookups != first.Stats.IndexLookups {
			t.Fatalf("round %d: access stats moved with |D| (%d → %d tuples): %+v vs %+v",
				round, d0, dn, first.Stats, res.Stats)
		}
		if fmt.Sprint(res.Tuples) != fmt.Sprint(first.Tuples) {
			t.Fatalf("round %d: answers changed under growth-only ingest", round)
		}
	}
	dn := ld.Snapshot().NumTuples()
	if dn < 8*d0 {
		t.Fatalf("|D| grew only %d → %d; test intended an order of magnitude", d0, dn)
	}
	t.Logf("|D| %d → %d (×%.1f): fetched stayed at %d tuples, %d lookups",
		d0, dn, float64(dn)/float64(d0), first.Stats.TuplesFetched, first.Stats.IndexLookups)
}
