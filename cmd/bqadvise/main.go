// Command bqadvise closes the loop the paper's conclusion leaves open:
// given data and a query workload, mine candidate access constraints from
// the data (package discover) and assemble a small access schema that
// makes as many workload queries as possible effectively bounded (package
// advisor).
//
// Usage:
//
//	bqadvise -dataset social -scale 0.25 -budget 12
//	bqadvise -dataset mot -pairs        # also mine attribute-pair LHSs
//
// The tool deliberately ignores the dataset's declared access schema: it
// rediscovers everything from the generated instance, demonstrating how a
// DBA would bootstrap bounded evaluation on an existing database.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bcq/internal/advisor"
	"bcq/internal/datagen"
	"bcq/internal/discover"
	"bcq/internal/querygen"
	"bcq/internal/schema"
	"bcq/internal/spc"
)

func main() {
	dataset := flag.String("dataset", "social", "dataset: social | tfacc | mot | tpch")
	scale := flag.Float64("scale", 0.25, "scale factor of the instance to mine")
	budget := flag.Int("budget", 0, "max constraints to select (0 = until no pick helps)")
	maxN := flag.Int64("maxn", 2000, "largest cardinality bound worth declaring")
	slack := flag.Float64("slack", 2, "headroom multiplier on measured bounds")
	pairs := flag.Bool("pairs", false, "also mine attribute-pair LHSs (slower)")
	flag.Parse()
	if err := run(*dataset, *scale, *budget, *maxN, *slack, *pairs); err != nil {
		fmt.Fprintln(os.Stderr, "bqadvise:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, budget int, maxN int64, slack float64, pairs bool) error {
	var ds *datagen.Dataset
	switch dataset {
	case "social":
		ds = datagen.Social()
	case "tfacc":
		ds = datagen.TFACC()
	case "mot":
		ds = datagen.MOT()
	case "tpch":
		ds = datagen.TPCH()
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	fmt.Printf("building %s at scale %g ...\n", ds.Name, scale)
	db, err := ds.Build(scale)
	if err != nil {
		return err
	}
	fmt.Printf("|D| = %d tuples\n\n", db.NumTuples())

	opts := discover.Options{MaxN: maxN, SlackFactor: slack, MaxXSize: 1}
	if pairs {
		opts.MaxXSize = 2
	}
	start := time.Now()
	mined, err := discover.Database(db, opts)
	if err != nil {
		return err
	}
	fmt.Printf("mined %d candidate constraints in %v\n", len(mined), time.Since(start).Round(time.Millisecond))

	pool := make([]schema.AccessConstraint, len(mined))
	for i, d := range mined {
		pool[i] = d.Constraint
	}

	var queries []*spc.Query
	if dataset == "social" {
		// The Social schema is too small for the generated workload; use
		// the paper's own queries.
		for _, src := range []string{
			`query Q0: select t1.photo_id from in_album as t1, friends as t2, tagging as t3
			 where t1.album_id = 3 and t2.user_id = 74 and t1.photo_id = t3.photo_id
			   and t3.tagger_id = t2.friend_id and t3.taggee_id = t2.user_id`,
			`query albums: select t1.photo_id from in_album as t1 where t1.album_id = 5`,
			`query friendsOf: select t2.friend_id from friends as t2 where t2.user_id = 9`,
			`query unanchored: select t1.photo_id from in_album as t1`,
		} {
			q, err := spc.Parse(src, ds.Catalog)
			if err != nil {
				return err
			}
			queries = append(queries, q)
		}
	} else {
		ws, err := querygen.Workload(ds, querygen.Seed)
		if err != nil {
			return err
		}
		for _, w := range ws {
			queries = append(queries, w.Query)
		}
	}
	fmt.Printf("advising for the %d-query workload ...\n\n", len(queries))

	start = time.Now()
	adv, err := advisor.Advise(ds.Catalog, queries, pool, budget)
	if err != nil {
		return err
	}
	fmt.Printf("selected %d constraints in %v:\n", adv.Schema.Size(), time.Since(start).Round(time.Millisecond))
	for _, step := range adv.Steps {
		fmt.Printf("  + %-60s -> %d queries bounded\n", step.Constraint, step.BoundedNow)
	}
	fmt.Printf("\neffectively bounded (%d): %v\n", len(adv.Bounded), adv.Bounded)
	if len(adv.Unbounded) > 0 {
		fmt.Printf("still unbounded (%d):\n", len(adv.Unbounded))
		for _, d := range adv.Unbounded {
			fmt.Printf("  %s — %s\n", d.Query, d.Reason)
		}
	}
	return nil
}
