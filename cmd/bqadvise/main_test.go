package main

import "testing"

func TestAdviseSocial(t *testing.T) {
	if err := run("social", 1.0/32, 6, 2000, 2, true); err != nil {
		t.Fatal(err)
	}
}

func TestAdviseUnknownDataset(t *testing.T) {
	if err := run("nope", 1, 0, 0, 1, false); err == nil {
		t.Error("unknown dataset accepted")
	}
}
