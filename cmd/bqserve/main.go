// Command bqserve serves bounded-query answers over HTTP: it builds one
// of the built-in datasets, wraps it in a live (or sharded) store and a
// prepared-query engine, and exposes the serving layer's JSON endpoints
// — /query, /prepare, /ingest, /stats, /healthz.
//
// Usage:
//
//	bqserve -dataset social -scale 0.25 -addr :8080
//	bqserve -dataset tfacc -scale 0.5 -shards 4 -parallel 4 -workers 32
//
// Quickstart against a running server:
//
//	curl -s localhost:8080/query -d '{
//	  "query": "select photo_id from in_album where album_id = ?",
//	  "args": [3]
//	}'
//	curl -s localhost:8080/ingest -d '{
//	  "ops": [{"op": "insert", "rel": "friends", "tuple": [1, 2]}]
//	}'
//	curl -s localhost:8080/stats
//
// Large answers can be paged: "limit": N streams the first N answers as
// they are produced and returns a next_cursor token; posting {"cursor":
// "<token>"} continues the scan on the same pinned snapshot, so every
// page reads one consistent epoch no matter how much ingest lands
// between requests. -cursor-cap and -cursor-ttl bound the snapshots the
// server pins for absent clients.
//
//	curl -s localhost:8080/query -d '{
//	  "query": "select photo_id from in_album where album_id = ?",
//	  "args": [3], "limit": 100
//	}'
//	curl -s localhost:8080/query -d '{"cursor": "<next_cursor from the page above>"}'
//
// Hot queries are answered from an epoch-keyed result cache: live writes
// publish a new snapshot epoch, which changes the cache key, so cached
// answers are never stale (paged responses bypass the cache). The worker
// pool bounds concurrent executions (-workers), queues up to -queue
// requests beyond that, rejects the rest with 503, and enforces a
// per-request deadline (-timeout, or the request's timeout_ms).
//
// Durability is opt-in: -data-dir names a directory where every shard
// keeps a write-ahead log (fsynced per committed batch) and checkpoint
// segments. A fresh directory is seeded from -dataset/-scale; an
// existing one is recovered — newest valid checkpoint plus WAL tail —
// and the dataset flags are ignored for data. -shards must then match
// the directory's manifest (omit it to accept the manifest's count).
// SIGINT/SIGTERM shuts down gracefully: in-flight requests drain, open
// cursors close, the store checkpoints and fsyncs, so a restart replays
// zero WAL records.
//
//	bqserve -dataset social -scale 0.25 -data-dir /var/lib/bcq -shards 4
//
// Observability is opt-in: -metrics exposes every subsystem's counters,
// gauges and latency histograms in Prometheus text format at GET
// /metrics; -slow-query-log appends one JSON line per sampled slow query
// (threshold -slow-threshold, 1-in--slow-sample) with the fingerprint,
// the plan's estimate-versus-actual accounting and the span tree; and
// -pprof-addr serves net/http/pprof on a separate listener so profiling
// never shares the query port.
//
// A retention tier sits on top: with -metrics the server also samples
// the registry on a ticker and serves windowed metric history at GET
// /debug/timeseries (-timeseries-interval, -timeseries-window);
// -trace-retention N keeps the complete span trees of up to N
// slow/errored/outlier queries, addressable at GET /debug/traces/{id}
// — every slow-log line's trace_id resolves there; -slo-latency arms
// multi-window burn-rate detection (latency + error SLOs) whose
// verdict folds into GET /healthz as "degraded". -slow-log-max-bytes
// bounds the slow-log file with rename-and-truncate rotation.
//
//	bqserve -dataset social -metrics \
//	  -slow-query-log slow.jsonl -slow-threshold 50ms -slow-log-max-bytes 10485760 \
//	  -trace-retention 256 -slo-latency 250ms \
//	  -pprof-addr localhost:6060
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bcq/internal/datagen"
	"bcq/internal/engine"
	"bcq/internal/live"
	"bcq/internal/obs"
	"bcq/internal/serve"
	"bcq/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataset := flag.String("dataset", "social", "dataset: social | tfacc | mot | tpch")
	scale := flag.Float64("scale", 0.25, "scale factor")
	shards := flag.Int("shards", 1, "partition the store into P shards (1 = single live store)")
	dataDir := flag.String("data-dir", "", "durable store directory: WAL + checkpoint segments per shard; an existing store is recovered (dataset/scale only seed a fresh directory)")
	parallel := flag.Int("parallel", 1, "bounded-executor probe workers per query")
	workers := flag.Int("workers", 0, "concurrently executing requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queued requests beyond the workers (0 = 8 x workers)")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-request deadline")
	cacheSize := flag.Int("cache", serve.DefaultResultCacheSize, "result cache entries (negative disables)")
	cursorCap := flag.Int("cursor-cap", serve.DefaultCursorCap, "max concurrently open pagination cursors (each pins one snapshot)")
	cursorTTL := flag.Duration("cursor-ttl", serve.DefaultCursorTTL, "idle pagination cursors expire after this long (then answer 410)")
	metrics := flag.Bool("metrics", false, "expose Prometheus-format metrics at GET /metrics")
	planUpgrade := flag.Bool("plan-upgrade", true, "tiered planning: answer cold prepares with the greedy plan and upgrade cached plans to the full optimizer in the background (false = full optimization on every cold prepare)")
	slowLog := flag.String("slow-query-log", "", "append sampled slow queries as JSON lines to this file (- for stderr)")
	slowThreshold := flag.Duration("slow-threshold", 100*time.Millisecond, "queries at least this slow are slow-log candidates")
	slowSample := flag.Int("slow-sample", 1, "log every Nth slow-log candidate")
	slowLogMaxBytes := flag.Int64("slow-log-max-bytes", 0, "rotate the slow-query log file past this size (0 = never; keeps one .1 generation)")
	tsInterval := flag.Duration("timeseries-interval", obs.DefaultSampleInterval, "metric-history sampling period for GET /debug/timeseries (needs -metrics)")
	tsWindow := flag.Int("timeseries-window", obs.DefaultSampleWindow, "retained samples per metric series")
	traceRetention := flag.Int("trace-retention", 0, "retain up to N slow/errored/outlier traces for GET /debug/traces (0 disables)")
	sloLatency := flag.Duration("slo-latency", 0, "latency SLO threshold; burn-rate detection folds into /healthz (0 disables SLOs)")
	sloLatencyBudget := flag.Float64("slo-latency-budget", obs.DefaultLatencyBudget, "tolerated fraction of requests over the latency threshold")
	sloErrorBudget := flag.Float64("slo-error-budget", obs.DefaultErrorBudget, "tolerated fraction of 5xx responses")
	sloShort := flag.Duration("slo-short", obs.DefaultShortWindow, "short burn-rate window")
	sloLong := flag.Duration("slo-long", obs.DefaultLongWindow, "long burn-rate window (capped at 1h)")
	sloBurn := flag.Float64("slo-burn", obs.DefaultBurnThreshold, "degraded when both windows burn at least this many times the budget")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty disables)")
	flag.Parse()
	shardsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsSet = true
		}
	})

	srv, info, err := buildServer(config{
		dataset:          *dataset,
		scale:            *scale,
		shards:           *shards,
		shardsSet:        shardsSet,
		dataDir:          *dataDir,
		parallel:         *parallel,
		workers:          *workers,
		queue:            *queue,
		timeout:          *timeout,
		cacheSize:        *cacheSize,
		cursorCap:        *cursorCap,
		cursorTTL:        *cursorTTL,
		metrics:          *metrics,
		planUpgrade:      *planUpgrade,
		slowLog:          *slowLog,
		slowThreshold:    *slowThreshold,
		slowSample:       *slowSample,
		slowLogMaxBytes:  *slowLogMaxBytes,
		tsInterval:       *tsInterval,
		tsWindow:         *tsWindow,
		traceRetention:   *traceRetention,
		sloLatency:       *sloLatency,
		sloLatencyBudget: *sloLatencyBudget,
		sloErrorBudget:   *sloErrorBudget,
		sloShort:         *sloShort,
		sloLong:          *sloLong,
		sloBurn:          *sloBurn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bqserve:", err)
		os.Exit(1)
	}
	if *pprofAddr != "" {
		// pprof rides http.DefaultServeMux (the blank net/http/pprof
		// import) on its own listener so profiling endpoints are never
		// reachable through the query port.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "bqserve: pprof:", err)
			}
		}()
		fmt.Printf("pprof on %s\n", *pprofAddr)
	}
	fmt.Println(info)
	fmt.Printf("listening on %s\n", *addr)

	// Graceful shutdown: SIGINT/SIGTERM drains the worker pool, closes
	// open cursors, checkpoints and fsyncs the store's WALs
	// (serve.Server.Shutdown), then stops the listener — so a restart
	// replays zero WAL records.
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		fmt.Println("bqserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "bqserve: shutdown:", err)
		}
		_ = httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "bqserve:", err)
		os.Exit(1)
	}
}

// config carries the validated flag set.
type config struct {
	dataset          string
	scale            float64
	shards           int
	shardsSet        bool
	dataDir          string
	parallel         int
	workers          int
	queue            int
	timeout          time.Duration
	cacheSize        int
	cursorCap        int
	cursorTTL        time.Duration
	metrics          bool
	planUpgrade      bool
	slowLog          string
	slowThreshold    time.Duration
	slowSample       int
	slowLogMaxBytes  int64
	tsInterval       time.Duration
	tsWindow         int
	traceRetention   int
	sloLatency       time.Duration
	sloLatencyBudget float64
	sloErrorBudget   float64
	sloShort         time.Duration
	sloLong          time.Duration
	sloBurn          float64
}

func (c config) validate() error {
	if c.scale <= 0 {
		return fmt.Errorf("-scale %g: scale factor must be > 0", c.scale)
	}
	if c.shards < 1 {
		return fmt.Errorf("-shards %d: shard count must be ≥ 1", c.shards)
	}
	if c.parallel < 1 {
		return fmt.Errorf("-parallel %d: probe worker count must be ≥ 1", c.parallel)
	}
	if c.workers < 0 || c.queue < 0 {
		return fmt.Errorf("-workers/-queue must be ≥ 0")
	}
	if c.cursorCap < 0 {
		return fmt.Errorf("-cursor-cap %d: open-cursor capacity must be ≥ 0 (0 = default)", c.cursorCap)
	}
	if c.cursorTTL < 0 {
		return fmt.Errorf("-cursor-ttl %v: cursor lifetime must be ≥ 0 (0 = default)", c.cursorTTL)
	}
	if c.slowThreshold < 0 {
		return fmt.Errorf("-slow-threshold %v: threshold must be ≥ 0", c.slowThreshold)
	}
	if c.slowSample < 0 {
		return fmt.Errorf("-slow-sample %d: sampling rate must be ≥ 0 (0 = every candidate)", c.slowSample)
	}
	if c.slowLogMaxBytes < 0 {
		return fmt.Errorf("-slow-log-max-bytes %d: rotation size must be ≥ 0 (0 = never rotate)", c.slowLogMaxBytes)
	}
	if c.tsInterval < 0 || c.tsWindow < 0 {
		return fmt.Errorf("-timeseries-interval/-timeseries-window must be ≥ 0 (0 = default)")
	}
	if c.traceRetention < 0 {
		return fmt.Errorf("-trace-retention %d: retained-trace capacity must be ≥ 0 (0 = disabled)", c.traceRetention)
	}
	if c.sloLatency < 0 {
		return fmt.Errorf("-slo-latency %v: SLO threshold must be ≥ 0 (0 = disabled)", c.sloLatency)
	}
	if c.sloLatency > 0 {
		if c.sloLatencyBudget < 0 || c.sloLatencyBudget > 1 || c.sloErrorBudget < 0 || c.sloErrorBudget > 1 {
			return fmt.Errorf("-slo-latency-budget/-slo-error-budget must be in [0, 1]")
		}
		if c.sloShort < 0 || c.sloLong < 0 || c.sloBurn < 0 {
			return fmt.Errorf("-slo-short/-slo-long/-slo-burn must be ≥ 0 (0 = default)")
		}
	}
	return nil
}

func pickDataset(name string) (*datagen.Dataset, error) {
	switch name {
	case "social":
		return datagen.Social(), nil
	case "tfacc":
		return datagen.TFACC(), nil
	case "mot":
		return datagen.MOT(), nil
	case "tpch":
		return datagen.TPCH(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

// buildServer assembles dataset → store → engine → server, returning a
// one-line description of what is being served.
func buildServer(c config) (*serve.Server, string, error) {
	if err := c.validate(); err != nil {
		return nil, "", err
	}
	ds, err := pickDataset(c.dataset)
	if err != nil {
		return nil, "", err
	}

	// Observability is assembled before the store so instrumentation is
	// registered before any traffic: a registry when -metrics is set, a
	// slow-query log when a path is given, bundled into one Observer that
	// the serving layer consults (nil fields degrade to no-ops).
	ob := &obs.Observer{}
	if c.metrics {
		ob.Metrics = obs.NewRegistry()
		ob.TimeSeries = obs.NewTimeSeries(ob.Metrics, obs.TimeSeriesOptions{
			Interval: c.tsInterval,
			Window:   c.tsWindow,
		})
		ob.TimeSeries.Start()
	}
	if c.slowLog != "" {
		if c.slowLog == "-" {
			ob.SlowLog = obs.NewSlowLog(os.Stderr, c.slowThreshold, c.slowSample)
		} else {
			sl, err := obs.NewSlowLogFile(c.slowLog, c.slowThreshold, c.slowSample, c.slowLogMaxBytes)
			if err != nil {
				return nil, "", fmt.Errorf("-slow-query-log: %w", err)
			}
			ob.SlowLog = sl
		}
	}
	if c.traceRetention > 0 {
		ob.Traces = obs.NewTraceRecorder(obs.TraceRecorderOptions{
			Capacity:      c.traceRetention,
			SlowThreshold: c.slowThreshold,
		})
	}
	if c.sloLatency > 0 {
		ob.SLO = obs.NewSLO(obs.SLOOptions{
			LatencyThreshold: c.sloLatency,
			LatencyBudget:    c.sloLatencyBudget,
			ErrorBudget:      c.sloErrorBudget,
			ShortWindow:      c.sloShort,
			LongWindow:       c.sloLong,
			BurnThreshold:    c.sloBurn,
		})
	}

	opts := serve.Options{
		Workers:         c.workers,
		MaxQueue:        c.queue,
		DefaultTimeout:  c.timeout,
		ResultCacheSize: c.cacheSize,
		CursorCap:       c.cursorCap,
		CursorTTL:       c.cursorTTL,
		Obs:             ob,
	}
	engOpts := engine.Options{Parallelism: c.parallel, Metrics: ob.Metrics, Recorder: ob.Traces}
	if c.planUpgrade {
		// Serving default: greedy-first cold prepares keep planning off the
		// request tail; the background worker installs the optimized tier.
		engOpts.PlanMode = engine.PlanTiered
	}

	var (
		eng    *engine.Engine
		kind   string
		tuples int64
	)
	switch {
	case c.dataDir != "":
		// Durable store: recover an existing directory (the dataset's
		// tuples already live there — -scale only seeds a fresh one) or
		// create and seed it. A single-shard store uses the same layout
		// with P = 1, so the directory stays openable either way.
		var (
			ss  *shard.Store
			rec *shard.Recovery
		)
		if _, merr := shard.ReadManifest(c.dataDir); merr == nil {
			want := 0 // accept the manifest's count unless -shards was given
			if c.shardsSet {
				want = c.shards
			}
			ss, rec, err = shard.Open(c.dataDir, ds.Catalog, ds.Access, shard.Options{Shards: want})
			if err != nil {
				return nil, "", err
			}
		} else if !errors.Is(merr, fs.ErrNotExist) {
			return nil, "", merr
		} else {
			db, err := ds.Build(c.scale)
			if err != nil {
				return nil, "", err
			}
			ss, err = shard.New(db, ds.Access, shard.Options{Shards: c.shards, Dir: c.dataDir})
			if err != nil {
				return nil, "", err
			}
		}
		ss.Instrument(ob.Metrics)
		eng, err = engine.NewSharded(ss, engOpts)
		if err != nil {
			ss.Close()
			return nil, "", err
		}
		opts.Ingest = ss.Apply
		opts.Metrics = ss
		opts.CloseStore = ss.Close
		tuples = ss.NumTuples()
		kind = fmt.Sprintf("durable store (P=%d, dir %s)", ss.NumShards(), c.dataDir)
		if rec != nil && !rec.Fresh {
			kind += fmt.Sprintf(", recovered: %d WAL ops replayed", rec.ReplayedOps())
		}
	case c.shards > 1:
		db, err := ds.Build(c.scale)
		if err != nil {
			return nil, "", err
		}
		ss, err := shard.New(db, ds.Access, shard.Options{Shards: c.shards})
		if err != nil {
			return nil, "", err
		}
		ss.Instrument(ob.Metrics)
		eng, err = engine.NewSharded(ss, engOpts)
		if err != nil {
			return nil, "", err
		}
		opts.Ingest = ss.Apply
		opts.Metrics = ss
		tuples = db.NumTuples()
		kind = fmt.Sprintf("sharded store (P=%d)", c.shards)
	default:
		db, err := ds.Build(c.scale)
		if err != nil {
			return nil, "", err
		}
		ls, err := live.New(db, ds.Access, live.Options{})
		if err != nil {
			return nil, "", err
		}
		ls.Instrument(ob.Metrics)
		eng, err = engine.NewLive(ls, engOpts)
		if err != nil {
			return nil, "", err
		}
		opts.Ingest = func(ops []live.Op) error {
			_, err := ls.Apply(ops)
			return err
		}
		opts.Metrics = ls
		tuples = db.NumTuples()
		kind = "live store"
	}
	srv, err := serve.New(eng, opts)
	if err != nil {
		return nil, "", err
	}
	info := fmt.Sprintf("serving %s at scale %g over a %s: |D| = %d tuples, %d access constraints",
		ds.Name, c.scale, kind, tuples, ds.Access.Size())
	return srv, info, nil
}
