package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBuildAndServeSmoke stands the server up over the small social
// dataset (live and sharded) and exercises every endpoint once.
func TestBuildAndServeSmoke(t *testing.T) {
	for _, shards := range []int{1, 3} {
		srv, info, err := buildServer(config{
			dataset: "social", scale: 1.0 / 32, shards: shards, parallel: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(strings.ToLower(info), "social") {
			t.Errorf("info %q does not name the dataset", info)
		}
		hs := httptest.NewServer(srv.Handler())

		code, body := postJSON(t, hs.URL+"/query",
			`{"query": "select photo_id from in_album where album_id = ?", "args": [1]}`)
		if code != http.StatusOK {
			t.Fatalf("shards=%d /query: status %d: %s", shards, code, body)
		}
		var env struct {
			Epoch  string          `json:"epoch"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal([]byte(body), &env); err != nil || env.Epoch == "" {
			t.Fatalf("shards=%d /query response %s undecodable (%v)", shards, body, err)
		}

		code, body = postJSON(t, hs.URL+"/ingest",
			`{"ops": [{"op": "insert", "rel": "friends", "tuple": [1, 2]}]}`)
		if code != http.StatusOK {
			t.Fatalf("shards=%d /ingest: status %d: %s", shards, code, body)
		}

		for _, path := range []string{"/stats", "/healthz"} {
			resp, err := http.Get(hs.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("shards=%d %s: status %d", shards, path, resp.StatusCode)
			}
		}
		hs.Close()
	}
}

// TestSlowLogTracesResolveEndToEnd is the acceptance path for the
// retention tier as assembled by the real buildServer: a threshold-0
// slow log plus an armed trace recorder means every slow-log line
// written while serving must resolve through GET /debug/traces/{id},
// and /debug/timeseries must serve sampled history.
func TestSlowLogTracesResolveEndToEnd(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "slow.jsonl")
	srv, _, err := buildServer(config{
		dataset: "social", scale: 1.0 / 32, shards: 1, parallel: 2,
		metrics:        true,
		slowLog:        logPath,
		slowThreshold:  0, // every query is a slow-log candidate
		slowSample:     1,
		traceRetention: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	for i := 0; i < 12; i++ {
		code, body := postJSON(t, hs.URL+"/query",
			`{"query": "select photo_id from in_album where album_id = ?", "args": [1]}`)
		if code != http.StatusOK {
			t.Fatalf("/query %d: status %d: %s", i, code, body)
		}
	}

	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var ids []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var entry struct {
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &entry); err != nil {
			t.Fatalf("slow-log line undecodable: %v: %s", err, sc.Text())
		}
		if entry.TraceID == "" {
			t.Fatalf("slow-log line missing trace_id: %s", sc.Text())
		}
		ids = append(ids, entry.TraceID)
	}
	if len(ids) == 0 {
		t.Fatal("threshold-0 slow log wrote no entries")
	}
	for _, id := range ids {
		resp, err := http.Get(hs.URL + "/debug/traces/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var rt struct {
			TraceID string          `json:"trace_id"`
			Reasons []string        `json:"reasons"`
			Spans   json.RawMessage `json:"spans"`
		}
		err = json.NewDecoder(resp.Body).Decode(&rt)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("slow-logged trace %s did not resolve: status %d", id, resp.StatusCode)
		}
		if err != nil || rt.TraceID != id || len(rt.Spans) == 0 {
			t.Fatalf("trace %s: bad payload (err %v, id %q, %d span bytes)", id, err, rt.TraceID, len(rt.Spans))
		}
	}

	resp, err := http.Get(hs.URL + "/debug/timeseries?last=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/timeseries: status %d", resp.StatusCode)
	}
	var doc struct {
		IntervalMS int64 `json:"interval_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || doc.IntervalMS <= 0 {
		t.Fatalf("/debug/timeseries payload bad (err %v, interval %d)", err, doc.IntervalMS)
	}
}

// TestDurableRestartCycle is the serving-layer acceptance path for the
// durable tier: seed a fresh -data-dir, ingest over HTTP, shut down
// gracefully, and restart — the write must be there and the restart must
// have replayed zero WAL records (Shutdown checkpointed). A -shards
// value that disagrees with the directory is rejected.
func TestDurableRestartCycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	// shards stays at its flag default (1) with shardsSet false: on
	// restart the manifest's count must win.
	base := config{dataset: "social", scale: 1.0 / 32, shards: 1, parallel: 2, dataDir: dir}

	first := base
	first.shards, first.shardsSet = 2, true
	srv, _, err := buildServer(first)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	code, body := postJSON(t, hs.URL+"/ingest",
		`{"ops": [{"op": "insert", "rel": "friends", "tuple": [777777, 888888]}]}`)
	if code != http.StatusOK {
		t.Fatalf("/ingest: status %d: %s", code, body)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	hs.Close()

	wrong := base
	wrong.shards, wrong.shardsSet = 3, true
	if _, _, err := buildServer(wrong); err == nil {
		t.Fatal("restart with mismatched -shards was accepted")
	}

	srv2, info, err := buildServer(base) // -shards not set: manifest wins
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if !strings.Contains(info, "P=2") {
		t.Errorf("restart info %q does not report the manifest's shard count", info)
	}
	if strings.Contains(info, "replayed") && !strings.Contains(info, "0 WAL ops replayed") {
		t.Errorf("restart info %q reports WAL replay after a clean shutdown", info)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	code, body = postJSON(t, hs2.URL+"/query",
		`{"query": "select friend_id from friends where user_id = ?", "args": [777777]}`)
	if code != http.StatusOK {
		t.Fatalf("/query after restart: status %d: %s", code, body)
	}
	if !strings.Contains(body, "888888") {
		t.Fatalf("ingested tuple lost across restart: %s", body)
	}
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	hs2.Close()
}

func TestConfigValidation(t *testing.T) {
	bad := []config{
		{dataset: "social", scale: 0},
		{dataset: "social", scale: 1, shards: 0},
		{dataset: "social", scale: 1, shards: 1, parallel: 0},
		{dataset: "nope", scale: 1, shards: 1, parallel: 1},
		{dataset: "social", scale: 1, shards: 1, parallel: 1, slowLogMaxBytes: -1},
		{dataset: "social", scale: 1, shards: 1, parallel: 1, traceRetention: -1},
		{dataset: "social", scale: 1, shards: 1, parallel: 1, sloLatency: -1},
		{dataset: "social", scale: 1, shards: 1, parallel: 1, sloLatency: 1, sloLatencyBudget: 2},
	}
	for _, c := range bad {
		if _, _, err := buildServer(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func postJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}
