package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBuildAndServeSmoke stands the server up over the small social
// dataset (live and sharded) and exercises every endpoint once.
func TestBuildAndServeSmoke(t *testing.T) {
	for _, shards := range []int{1, 3} {
		srv, info, err := buildServer(config{
			dataset: "social", scale: 1.0 / 32, shards: shards, parallel: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(strings.ToLower(info), "social") {
			t.Errorf("info %q does not name the dataset", info)
		}
		hs := httptest.NewServer(srv.Handler())

		code, body := postJSON(t, hs.URL+"/query",
			`{"query": "select photo_id from in_album where album_id = ?", "args": [1]}`)
		if code != http.StatusOK {
			t.Fatalf("shards=%d /query: status %d: %s", shards, code, body)
		}
		var env struct {
			Epoch  string          `json:"epoch"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal([]byte(body), &env); err != nil || env.Epoch == "" {
			t.Fatalf("shards=%d /query response %s undecodable (%v)", shards, body, err)
		}

		code, body = postJSON(t, hs.URL+"/ingest",
			`{"ops": [{"op": "insert", "rel": "friends", "tuple": [1, 2]}]}`)
		if code != http.StatusOK {
			t.Fatalf("shards=%d /ingest: status %d: %s", shards, code, body)
		}

		for _, path := range []string{"/stats", "/healthz"} {
			resp, err := http.Get(hs.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("shards=%d %s: status %d", shards, path, resp.StatusCode)
			}
		}
		hs.Close()
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []config{
		{dataset: "social", scale: 0},
		{dataset: "social", scale: 1, shards: 0},
		{dataset: "social", scale: 1, shards: 1, parallel: 0},
		{dataset: "nope", scale: 1, shards: 1, parallel: 1},
	}
	for _, c := range bad {
		if _, _, err := buildServer(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func postJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}
