// Command bqtop is a live terminal dashboard for a running bqserve: it
// polls GET /debug/timeseries (the server's retained metric history) and
// GET /healthz, and renders per-endpoint QPS / p99 / error rate, queue
// wait, epoch age, trace retention, and the SLO burn-rate verdict.
//
// Usage:
//
//	bqtop -addr http://localhost:8080            # refresh every 2s
//	bqtop -addr http://localhost:8080 -once      # one frame, no ANSI
//
// The server must run with -metrics (the sampler rides the registry);
// rows appear as traffic reaches each endpoint. All numbers come from
// the newest delta-window sample, so they describe the last sampling
// interval, not the process lifetime.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"bcq/internal/obs"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "bqserve base URL")
	interval := flag.Duration("interval", 2*time.Second, "refresh period")
	once := flag.Bool("once", false, "render one frame and exit (no ANSI clear)")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	for {
		frame, err := fetchFrame(client, strings.TrimRight(*addr, "/"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bqtop:", err)
			os.Exit(1)
		}
		if *once {
			fmt.Print(render(frame))
			return
		}
		// Clear and home before each frame so the dashboard repaints in
		// place like top(1).
		fmt.Print("\x1b[2J\x1b[H" + render(frame))
		time.Sleep(*interval)
	}
}

// healthzPayload is the subset of GET /healthz bqtop renders.
type healthzPayload struct {
	OK         bool            `json:"ok"`
	Status     string          `json:"status"`
	Epoch      string          `json:"epoch"`
	Shards     int             `json:"shards"`
	InFlight   int64           `json:"in_flight"`
	Saturation float64         `json:"saturation"`
	SLO        *obs.SLOVerdict `json:"slo"`
}

// endpointRow is one endpoint's newest delta-window summary.
type endpointRow struct {
	endpoint string
	qps      float64 // all outcomes
	okP99MS  float64 // outcome=ok latency p99
	errQPS   float64 // overload + timeout + error outcomes
}

// frame is everything one render needs, decoupled from HTTP so tests
// can build frames directly.
type frame struct {
	addr    string
	health  healthzPayload
	rows    []endpointRow
	queueMS float64 // queue-wait p99, newest window
	epochS  float64 // bcq_epoch_age_seconds
	traces  float64 // bcq_traces_resident
	p99MS   float64 // bcq_trace_rolling_p99_seconds
}

// fetchFrame polls the server once and reduces the newest sample of
// each relevant series into a frame.
func fetchFrame(client *http.Client, addr string) (frame, error) {
	fr := frame{addr: addr}
	var doc obs.TSDocument
	if err := getJSON(client, addr+"/debug/timeseries?last=1", &doc); err != nil {
		return fr, err
	}
	if err := getJSON(client, addr+"/healthz", &fr.health); err != nil {
		return fr, err
	}
	rows := map[string]*endpointRow{}
	for _, ser := range doc.Series {
		p, ok := newest(ser.Points)
		if !ok {
			continue
		}
		switch ser.Name {
		case "bcq_http_request_seconds":
			ep := ser.Labels["endpoint"]
			row := rows[ep]
			if row == nil {
				row = &endpointRow{endpoint: ep}
				rows[ep] = row
			}
			row.qps += p.V
			switch ser.Labels["outcome"] {
			case "ok":
				row.okP99MS = p.P99 * 1e3
			case "overload", "timeout", "error":
				row.errQPS += p.V
			}
		case "bcq_queue_wait_seconds":
			fr.queueMS = p.P99 * 1e3
		case "bcq_epoch_age_seconds":
			fr.epochS = p.V
		case "bcq_traces_resident":
			fr.traces = p.V
		case "bcq_trace_rolling_p99_seconds":
			fr.p99MS = p.V * 1e3
		}
	}
	for _, row := range rows {
		fr.rows = append(fr.rows, *row)
	}
	sort.Slice(fr.rows, func(i, j int) bool { return fr.rows[i].endpoint < fr.rows[j].endpoint })
	return fr, nil
}

// newest returns the last (most recent) point of an oldest-first slice.
func newest(pts []obs.TSPoint) (obs.TSPoint, bool) {
	if len(pts) == 0 {
		return obs.TSPoint{}, false
	}
	return pts[len(pts)-1], true
}

// render lays the frame out as a fixed-width text dashboard.
func render(fr frame) string {
	var b strings.Builder
	status := fr.health.Status
	if status == "" {
		status = "ok"
	}
	fmt.Fprintf(&b, "bqserve %s  status=%s  epoch=%s  shards=%d  in-flight=%d  saturation=%.2f\n",
		fr.addr, status, fr.health.Epoch, fr.health.Shards, fr.health.InFlight, fr.health.Saturation)
	fmt.Fprintf(&b, "queue-wait p99 %8.2fms   epoch age %7.1fs   traces resident %4.0f   exec rolling p99 %8.2fms\n",
		fr.queueMS, fr.epochS, fr.traces, fr.p99MS)
	if slo := fr.health.SLO; slo != nil {
		if lat := slo.Latency; lat != nil {
			fmt.Fprintf(&b, "slo latency  burn short %6.1fx  long %6.1fx  (%d/%d bad short)\n",
				lat.ShortBurn, lat.LongBurn, lat.ShortBad, lat.ShortTotal)
		}
		if errs := slo.Errors; errs != nil {
			fmt.Fprintf(&b, "slo errors   burn short %6.1fx  long %6.1fx  (%d/%d bad short)\n",
				errs.ShortBurn, errs.LongBurn, errs.ShortBad, errs.ShortTotal)
		}
		if len(slo.Reasons) > 0 {
			fmt.Fprintf(&b, "degraded: %s\n", strings.Join(slo.Reasons, "; "))
		}
	}
	b.WriteString("\nENDPOINT     QPS        OK-P99      ERR/S\n")
	if len(fr.rows) == 0 {
		b.WriteString("(no traffic sampled yet — is bqserve running with -metrics?)\n")
		return b.String()
	}
	for _, row := range fr.rows {
		fmt.Fprintf(&b, "%-10s %8.2f %9.2fms %8.2f\n", row.endpoint, row.qps, row.okP99MS, row.errQPS)
	}
	return b.String()
}

// getJSON fetches one URL and decodes its JSON body.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
