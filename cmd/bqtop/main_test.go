package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// canned /debug/timeseries and /healthz payloads: one sampled window of
// query traffic plus a degraded latency SLO.
const (
	tsBody = `{
		"interval_ms": 2000, "window": 240, "samples": 3,
		"series_resident": 5, "series_dropped": 0,
		"series": [
			{"name": "bcq_epoch_age_seconds", "kind": "gauge",
			 "points": [{"ts_ms": 1000, "v": 42.5}]},
			{"name": "bcq_http_request_seconds", "kind": "histogram",
			 "labels": {"endpoint": "query", "outcome": "ok"},
			 "points": [{"ts_ms": 1000, "v": 12.5, "n": 25, "p50": 0.002, "p95": 0.004, "p99": 0.0075}]},
			{"name": "bcq_http_request_seconds", "kind": "histogram",
			 "labels": {"endpoint": "query", "outcome": "error"},
			 "points": [{"ts_ms": 1000, "v": 0.5, "n": 1, "p99": 0.1}]},
			{"name": "bcq_http_request_seconds", "kind": "histogram",
			 "labels": {"endpoint": "ingest", "outcome": "ok"},
			 "points": [{"ts_ms": 1000, "v": 3.0, "n": 6, "p99": 0.001}]},
			{"name": "bcq_queue_wait_seconds", "kind": "histogram",
			 "points": [{"ts_ms": 1000, "v": 15.5, "n": 31, "p99": 0.0125}]},
			{"name": "bcq_traces_resident", "kind": "gauge",
			 "points": [{"ts_ms": 1000, "v": 7}]},
			{"name": "bcq_trace_rolling_p99_seconds", "kind": "gauge",
			 "points": [{"ts_ms": 1000, "v": 0.009}]}
		]
	}`
	hzBody = `{
		"ok": true, "status": "degraded", "epoch": "e17", "shards": 4,
		"in_flight": 2, "saturation": 0.25,
		"slo": {
			"degraded": true,
			"reasons": ["latency burn 8.0x over threshold 2.0x"],
			"latency": {"short_burn": 8, "long_burn": 4, "short_bad": 12, "short_total": 150,
			            "long_bad": 30, "long_total": 900}
		}
	}`
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/timeseries", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(tsBody))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(hzBody))
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return hs
}

// TestFetchFrame: the newest sample of each series reduces into one
// frame — per-endpoint QPS sums outcomes, ok-p99 converts to ms, error
// outcomes aggregate, and the scalar gauges land in their slots.
func TestFetchFrame(t *testing.T) {
	hs := testServer(t)
	fr, err := fetchFrame(hs.Client(), hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.rows) != 2 {
		t.Fatalf("rows = %+v, want ingest and query", fr.rows)
	}
	q := fr.rows[1] // sorted by endpoint: ingest, query
	if q.endpoint != "query" || q.qps != 13.0 || q.okP99MS != 7.5 || q.errQPS != 0.5 {
		t.Errorf("query row = %+v, want qps 13 (12.5 ok + 0.5 error), p99 7.5ms, err 0.5/s", q)
	}
	if fr.rows[0].endpoint != "ingest" || fr.rows[0].qps != 3.0 {
		t.Errorf("ingest row = %+v", fr.rows[0])
	}
	if fr.queueMS != 12.5 || fr.epochS != 42.5 || fr.traces != 7 || fr.p99MS != 9 {
		t.Errorf("scalars: queue %.2f epoch %.1f traces %.0f p99 %.2f",
			fr.queueMS, fr.epochS, fr.traces, fr.p99MS)
	}
	if !fr.health.SLO.Degraded || fr.health.Status != "degraded" {
		t.Errorf("health = %+v, want degraded verdict", fr.health)
	}
}

// TestRender: the dashboard names every surfaced fact.
func TestRender(t *testing.T) {
	hs := testServer(t)
	fr, err := fetchFrame(hs.Client(), hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	out := render(fr)
	for _, want := range []string{
		"status=degraded", "epoch=e17", "shards=4",
		"query", "ingest", "7.50ms", "12.50ms", "42.5s",
		"slo latency", "8.0x", "latency burn 8.0x over threshold",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestRenderEmpty: no sampled traffic renders a hint, not a panic.
func TestRenderEmpty(t *testing.T) {
	out := render(frame{addr: "http://x", health: healthzPayload{OK: true}})
	if !strings.Contains(out, "no traffic sampled yet") {
		t.Errorf("empty frame missing hint:\n%s", out)
	}
	if !strings.Contains(out, "status=ok") {
		t.Errorf("empty frame missing default status:\n%s", out)
	}
}

// TestFetchFrameErrors: non-200 and unreachable servers surface errors.
func TestFetchFrameErrors(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no sampler", http.StatusNotFound)
	}))
	defer hs.Close()
	if _, err := fetchFrame(hs.Client(), hs.URL); err == nil {
		t.Error("404 timeseries did not error")
	}
	if _, err := fetchFrame(&http.Client{}, "http://127.0.0.1:1"); err == nil {
		t.Error("unreachable server did not error")
	}
}
