// Command bqplan prints the bounded query plan for an effectively bounded
// SPC query: the fetch steps through the access indices, the per-atom
// verification strategy, and the worst-case number of tuples the plan can
// touch on any database satisfying the access schema.
//
// Usage:
//
//	bqplan -schema social.ddl -query q0.sql [-mbound M]
package main

import (
	"flag"
	"fmt"
	"os"

	"bcq"
)

func main() {
	schemaPath := flag.String("schema", "", "path to the schema DDL file (required)")
	queryPath := flag.String("query", "", "path to the SPC query file (required)")
	mbound := flag.Int64("mbound", 0, "if > 0, also decide effective M-boundedness for this M (exact, exponential)")
	flag.Parse()
	if *schemaPath == "" || *queryPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*schemaPath, *queryPath, *mbound); err != nil {
		fmt.Fprintln(os.Stderr, "bqplan:", err)
		os.Exit(1)
	}
}

func run(schemaPath, queryPath string, mbound int64) error {
	ddl, err := os.ReadFile(schemaPath)
	if err != nil {
		return err
	}
	cat, acc, err := bcq.ParseDDL(string(ddl))
	if err != nil {
		return err
	}
	qsrc, err := os.ReadFile(queryPath)
	if err != nil {
		return err
	}
	q, err := bcq.ParseQuery(string(qsrc), cat)
	if err != nil {
		return err
	}
	an, err := bcq.Analyze(cat, q, acc)
	if err != nil {
		return err
	}
	p, err := an.Plan()
	if err != nil {
		return err
	}
	fmt.Print(p.Explain())
	if mbound > 0 {
		res, err := an.MBounded(mbound, 0)
		if err != nil {
			return err
		}
		fmt.Printf("\neffectively %d-bounded: %v (optimal fetch bound over all plans: %s)\n",
			mbound, res.MBounded, res.MinFetchBound)
	}
	return nil
}
