package main

import "testing"

func TestRunQ0Plan(t *testing.T) {
	if err := run("../../testdata/social.ddl", "../../testdata/q0.sql", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunQ0PlanWithMBound(t *testing.T) {
	if err := run("../../testdata/social.ddl", "../../testdata/q0.sql", 10000); err != nil {
		t.Fatal(err)
	}
}

func TestRunQ1NotPlannable(t *testing.T) {
	if err := run("../../testdata/social.ddl", "../../testdata/q1.sql", 0); err == nil {
		t.Error("template must not be plannable before instantiation")
	}
}
