// Command bqcheck analyzes an SPC query under an access schema: is it
// bounded? effectively bounded? if not, which parameters dominate it?
//
// Usage:
//
//	bqcheck -schema social.ddl -query q0.sql [-alpha 0.9] [-exact]
//
// The schema file uses the DDL of bcq.ParseDDL (relation/constraint lines);
// the query file uses the SQL-ish SPC syntax of bcq.ParseQuery, with
// "attr = ?" placeholders for parameterized slots.
package main

import (
	"flag"
	"fmt"
	"os"

	"bcq"
)

func main() {
	schemaPath := flag.String("schema", "", "path to the schema DDL file (required)")
	queryPath := flag.String("query", "", "path to the SPC query file (required)")
	alpha := flag.Float64("alpha", 0.9, "dominating-parameter ratio bound α ∈ (0, 1]")
	exact := flag.Bool("exact", false, "also run the exact (exponential) minimum dominating-parameter search")
	flag.Parse()
	if *schemaPath == "" || *queryPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*schemaPath, *queryPath, *alpha, *exact); err != nil {
		fmt.Fprintln(os.Stderr, "bqcheck:", err)
		os.Exit(1)
	}
}

func run(schemaPath, queryPath string, alpha float64, exact bool) error {
	ddl, err := os.ReadFile(schemaPath)
	if err != nil {
		return err
	}
	cat, acc, err := bcq.ParseDDL(string(ddl))
	if err != nil {
		return err
	}
	qsrc, err := os.ReadFile(queryPath)
	if err != nil {
		return err
	}
	q, err := bcq.ParseQuery(string(qsrc), cat)
	if err != nil {
		return err
	}
	an, err := bcq.Analyze(cat, q, acc)
	if err != nil {
		return err
	}

	fmt.Printf("query: %s\n", q)
	fmt.Printf("access schema: %d constraints\n\n", acc.Size())

	b := an.Bounded()
	switch {
	case b.Trivial:
		fmt.Println("bounded:             yes (unsatisfiable: the answer is empty on every database)")
	case b.Bounded:
		fmt.Printf("bounded:             yes (≤ %s distinct parameter combinations)\n", b.Bound)
	default:
		fmt.Printf("bounded:             no — underivable: %v\n", b.MissingClasses)
	}

	eb := an.EffectivelyBounded()
	switch {
	case eb.EffectivelyBounded:
		fmt.Println("effectively bounded: yes")
	default:
		fmt.Println("effectively bounded: no")
		if len(eb.MissingClasses) > 0 {
			fmt.Printf("  parameters not deducible from constants: %v\n", eb.MissingClasses)
		}
		if len(eb.UnindexedAtoms) > 0 {
			fmt.Printf("  atoms whose parameters are not indexed:  %v\n", eb.UnindexedAtoms)
		}
	}

	if !eb.EffectivelyBounded {
		dp := an.DominatingParameters(alpha)
		if dp.Exists {
			fmt.Printf("dominating parameters (α = %g): instantiate", alpha)
			for _, ref := range dp.Params {
				fmt.Printf(" %s", q.RefString(ref))
			}
			fmt.Printf("  (ratio %.2f)\n", dp.Ratio)
		} else {
			fmt.Printf("dominating parameters: none — %s\n", dp.Reason)
		}
		if exact {
			res, err := an.ExactMinDominatingParameters(alpha, 0)
			if err != nil {
				fmt.Printf("exact MDP: %v\n", err)
			} else if res.Exists {
				fmt.Printf("exact minimum: %d parameters", len(res.Params))
				for _, ref := range res.Params {
					fmt.Printf(" %s", q.RefString(ref))
				}
				fmt.Println()
			} else {
				fmt.Printf("exact MDP: none — %s\n", res.Reason)
			}
		}
	}
	return nil
}
