package main

import "testing"

func TestRunQ0(t *testing.T) {
	if err := run("../../testdata/social.ddl", "../../testdata/q0.sql", 0.9, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunQ1WithExact(t *testing.T) {
	if err := run("../../testdata/social.ddl", "../../testdata/q1.sql", 0.5, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFiles(t *testing.T) {
	if err := run("nope.ddl", "../../testdata/q0.sql", 0.9, false); err == nil {
		t.Error("missing schema accepted")
	}
	if err := run("../../testdata/social.ddl", "nope.sql", 0.9, false); err == nil {
		t.Error("missing query accepted")
	}
}
