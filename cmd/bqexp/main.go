// Command bqexp regenerates the paper's Section 6 evaluation: the twelve
// panels of Figure 5, Table 1, Table 2 and the Exp-1 census, on the
// synthetic TFACC / MOT / TPCH datasets.
//
// Usage:
//
//	bqexp                 # everything, default configuration
//	bqexp -quick          # reduced scales (CI-friendly)
//	bqexp -only fig5d     # one experiment: fig5a..fig5l, table1, table2, census
//	bqexp -csv out/       # additionally dump panel CSVs for plotting
//	bqexp -json out.json  # additionally dump all results as JSON ("-" = stdout)
//	bqexp -parallel 8     # fan evalDQ's index probes over 8 workers
//
// The -json report carries every panel point and table row in one
// machine-readable document, so CI can produce benchmark trajectory
// files (BENCH_*.json) from a bqexp run instead of transcribing the
// rendered tables by hand.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bcq/internal/datagen"
	"bcq/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced scales and budget")
	only := flag.String("only", "", "run a single experiment: fig5a..fig5l, table1, table2, census")
	csvDir := flag.String("csv", "", "directory to write panel CSVs into")
	jsonPath := flag.String("json", "", "file to write all results into as JSON (\"-\" = stdout)")
	parallel := flag.Int("parallel", 1, "evalDQ probe workers (1 = sequential; answers are identical either way)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Parallelism = *parallel
	if err := run(cfg, strings.ToLower(*only), *csvDir, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "bqexp:", err)
		os.Exit(1)
	}
}

type panelSpec struct {
	id   string
	ds   func() *datagen.Dataset
	kind string // varyD, varyA, varySel, varyProd
}

var panels = []panelSpec{
	{"fig5a", datagen.TFACC, "varyD"},
	{"fig5b", datagen.TFACC, "varyA"},
	{"fig5c", datagen.TFACC, "varySel"},
	{"fig5d", datagen.TFACC, "varyProd"},
	{"fig5e", datagen.MOT, "varyD"},
	{"fig5f", datagen.MOT, "varyA"},
	{"fig5g", datagen.MOT, "varySel"},
	{"fig5h", datagen.MOT, "varyProd"},
	{"fig5i", datagen.TPCH, "varyD"},
	{"fig5j", datagen.TPCH, "varyA"},
	{"fig5k", datagen.TPCH, "varySel"},
	{"fig5l", datagen.TPCH, "varyProd"},
}

func run(cfg experiments.Config, only, csvDir, jsonPath string) error {
	var report experiments.Report
	runAll := only == ""
	for _, ps := range panels {
		if !runAll && only != ps.id {
			continue
		}
		ds := ps.ds()
		var (
			panel experiments.Panel
			err   error
		)
		switch ps.kind {
		case "varyD":
			panel, err = experiments.Fig5VaryD(ds, cfg)
		case "varyA":
			panel, err = experiments.Fig5VaryA(ds, cfg)
		case "varySel":
			panel, err = experiments.Fig5VarySel(ds, cfg)
		case "varyProd":
			panel, err = experiments.Fig5VaryProd(ds, cfg)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", ps.id, err)
		}
		panel.ID = strings.TrimPrefix(ps.id, "fig")
		experiments.RenderPanel(os.Stdout, panel)
		report.Panels = append(report.Panels, panel)
		if csvDir != "" {
			if err := writeCSV(csvDir, ps.id, panel); err != nil {
				return err
			}
		}
	}

	if runAll || only == "table1" {
		var rows []experiments.Table1Row
		for _, mk := range []func() *datagen.Dataset{datagen.TFACC, datagen.MOT, datagen.TPCH} {
			row, err := experiments.Table1(mk(), cfg)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		experiments.RenderTable1(os.Stdout, rows)
		report.Table1 = rows
	}

	if runAll || only == "census" {
		var rows []experiments.CensusResult
		for _, mk := range []func() *datagen.Dataset{datagen.TFACC, datagen.MOT, datagen.TPCH} {
			c, err := experiments.Census(mk(), cfg)
			if err != nil {
				return err
			}
			rows = append(rows, c)
		}
		experiments.RenderCensus(os.Stdout, rows)
		report.Census = rows
	}

	if runAll || only == "table2" {
		sizes := []int{2, 4, 6, 8, 10, 12}
		limit := 12
		points, err := experiments.Table2Scaling(sizes, limit)
		if err != nil {
			return err
		}
		experiments.RenderTable2(os.Stdout, points)
		report.Table2 = points
	}

	if jsonPath != "" && !report.Empty() {
		out := os.Stdout
		if jsonPath != "-" {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := experiments.WriteJSON(out, &report); err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(dir, id string, panel experiments.Panel) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	experiments.CSVPanel(f, panel)
	return nil
}
