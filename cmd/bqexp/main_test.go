package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"bcq/internal/experiments"
)

// smokeConfig trims the quick configuration further: the smoke test
// exercises the experiment plumbing (panel run, rendering, CSV dump),
// not the paper's full sweep.
func smokeConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Scales = []float64{1.0 / 32}
	cfg.FixedScale = 1.0 / 32
	cfg.Budget = 100_000
	return cfg
}

func TestRunSinglePanelWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a dataset and runs a workload panel")
	}
	dir := t.TempDir()
	if err := run(smokeConfig(), "fig5a", dir, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5a.csv"))
	if err != nil {
		t.Fatalf("panel CSV not written: %v", err)
	}
	if len(data) == 0 {
		t.Error("panel CSV is empty")
	}
}

func TestRunTable2(t *testing.T) {
	// Table 2 scales synthetic queries without building datasets — cheap
	// enough to run even with -short.
	if err := run(smokeConfig(), "table2", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable2JSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	if err := run(smokeConfig(), "table2", "", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
	var report experiments.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(report.Table2) == 0 {
		t.Error("report carries no table2 points")
	}
	if len(report.Panels) != 0 {
		t.Errorf("-only table2 report carries %d panels", len(report.Panels))
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	// An unrecognized -only matches no experiment and must not error;
	// with nothing collected, no JSON file may appear either.
	path := filepath.Join(t.TempDir(), "report.json")
	if err := run(smokeConfig(), "nope", "", path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err == nil {
		t.Error("empty report written")
	}
}
