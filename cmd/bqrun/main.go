// Command bqrun generates one of the built-in datasets, evaluates a query
// both ways — bounded (evalDQ through the prepared-query engine) and
// conventional (full-data baseline) — and compares answers and data
// access.
//
// Usage:
//
//	bqrun -dataset social -scale 0.5 -query q0.sql
//	bqrun -dataset tfacc -scale 1 -workload       # run the 15-query workload
//	bqrun -dataset mot -scale 1 -workload -parallel 8
//
// Datasets: social (Example 1), tfacc, mot, tpch. The -parallel flag fans
// each plan step's index probes over that many workers; answers are
// byte-identical to a sequential run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"bcq"
	"bcq/internal/datagen"
	"bcq/internal/engine"
	"bcq/internal/plan"
	"bcq/internal/querygen"
)

func main() {
	dataset := flag.String("dataset", "social", "dataset: social | tfacc | mot | tpch")
	scale := flag.Float64("scale", 0.25, "scale factor (the paper varies 2⁻⁵ … 1)")
	queryPath := flag.String("query", "", "path to an SPC query file")
	workload := flag.Bool("workload", false, "run the generated 15-query workload instead of -query")
	budget := flag.Int64("budget", 2_000_000, "baseline tuple budget (0 = unlimited)")
	parallel := flag.Int("parallel", 1, "bounded-executor probe workers (1 = sequential)")
	flag.Parse()

	if err := run(*dataset, *scale, *queryPath, *workload, *budget, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "bqrun:", err)
		os.Exit(1)
	}
}

func pickDataset(name string) (*datagen.Dataset, error) {
	switch name {
	case "social":
		return datagen.Social(), nil
	case "tfacc":
		return datagen.TFACC(), nil
	case "mot":
		return datagen.MOT(), nil
	case "tpch":
		return datagen.TPCH(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

func run(dataset string, scale float64, queryPath string, workload bool, budget int64, parallel int) error {
	ds, err := pickDataset(dataset)
	if err != nil {
		return err
	}
	fmt.Printf("building %s at scale %g ...\n", ds.Name, scale)
	start := time.Now()
	db, err := ds.Build(scale)
	if err != nil {
		return err
	}
	fmt.Printf("built |D| = %d tuples in %v\n\n", db.NumTuples(), time.Since(start).Round(time.Millisecond))

	eng, err := engine.New(ds.Catalog, ds.Access, db, engine.Options{Parallelism: parallel})
	if err != nil {
		return err
	}

	var queries []*bcq.Query
	switch {
	case workload:
		ws, err := querygen.Workload(ds, querygen.Seed)
		if err != nil {
			return err
		}
		for _, w := range ws {
			queries = append(queries, w.Query)
		}
	case queryPath != "":
		src, err := os.ReadFile(queryPath)
		if err != nil {
			return err
		}
		q, err := bcq.ParseQuery(string(src), ds.Catalog)
		if err != nil {
			return err
		}
		queries = append(queries, q)
	default:
		return fmt.Errorf("provide -query FILE or -workload")
	}

	for _, q := range queries {
		if err := runOne(ds, eng, q, budget); err != nil {
			return err
		}
	}
	st := eng.Stats()
	fmt.Printf("engine: %d prepares (%d planned, %d cache hits), %d executions\n",
		st.Prepares, st.CacheMisses, st.CacheHits, st.Execs)
	return nil
}

func runOne(ds *datagen.Dataset, eng *engine.Engine, q *bcq.Query, budget int64) error {
	fmt.Printf("== %s\n   %s\n", q.Name, q)
	prep, err := eng.PrepareQuery(q)
	if err != nil {
		var nebErr *plan.NotEffectivelyBoundedError
		if errors.As(err, &nebErr) {
			fmt.Printf("   not effectively bounded (%v); skipping bounded run\n\n", err)
			return nil
		}
		return err
	}
	if prep.NumParams() > 0 {
		return fmt.Errorf("query %s has %d unbound placeholders; bqrun runs fully instantiated queries", q.Name, prep.NumParams())
	}
	start := time.Now()
	res, err := prep.Exec()
	if err != nil {
		return err
	}
	evalTime := time.Since(start)
	fmt.Printf("   evalDQ:   %5d answers in %8v — fetched %d tuples (|D_Q| = %d, bound %s)\n",
		len(res.Tuples), evalTime.Round(time.Microsecond), res.Stats.TuplesFetched, res.DQSize, prep.FetchBound())

	an, err := bcq.Analyze(ds.Catalog, q, ds.Access)
	if err != nil {
		return err
	}
	start = time.Now()
	bres, err := bcq.ExecuteBaseline(an, eng.Database(), bcq.BaselineOptions{Budget: budget})
	baseTime := time.Since(start)
	switch {
	case err != nil:
		fmt.Printf("   baseline: DNF after %v (%v)\n", baseTime.Round(time.Microsecond), err)
	default:
		fmt.Printf("   baseline: %5d answers in %8v — touched %d tuples\n",
			len(bres.Tuples), baseTime.Round(time.Microsecond), bres.Stats.Total())
		if len(bres.Tuples) != len(res.Tuples) {
			return fmt.Errorf("ANSWER MISMATCH on %s: evalDQ %d vs baseline %d", q.Name, len(res.Tuples), len(bres.Tuples))
		}
		fmt.Printf("   answers agree ✓\n")
	}
	fmt.Println()
	return nil
}
