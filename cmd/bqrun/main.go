// Command bqrun generates one of the built-in datasets, evaluates a query
// both ways — bounded (evalDQ through the prepared-query engine) and
// conventional (full-data baseline) — and compares answers and data
// access.
//
// Usage:
//
//	bqrun -dataset social -scale 0.5 -query q0.sql
//	bqrun -dataset tfacc -scale 1 -workload       # run the 15-query workload
//	bqrun -dataset mot -scale 1 -workload -parallel 8
//	bqrun -dataset social -scale 0.5 -query q0.sql -ingest 100000
//	bqrun -dataset social -scale 0.5 -query q0.sql -shards 4 -ingest 100000
//	bqrun -dataset tfacc -scale 1 -workload -limit 5      # stop after 5 answers
//
// The -limit N flag re-runs each query through the early-terminating
// streaming executor: fetching stops as soon as N distinct answers
// exist, the report shows the probes the limit saved, and the limited
// answers are cross-checked as a subset of the full answer.
//
// The -trace-out FILE flag runs every query traced and appends each
// span tree as one machine-readable JSON line ({"trace_id", "root"}) —
// the same rendering the serving layer retains at /debug/traces/{id} —
// so offline runs feed the same tooling as production traces.
//
// Datasets: social (Example 1), tfacc, mot, tpch. The -parallel flag fans
// each plan step's index probes over that many workers; answers are
// byte-identical to a sequential run.
//
// The -ingest N flag switches to live mode: the dataset is wrapped in a
// live store, N tuples are streamed in (duplicates of existing tuples, so
// the access schema is never violated — the same duplication mechanism
// datagen scales |D| with) while the queries keep executing against
// pinned snapshots, and the run reports ingest throughput plus the
// before/after tuple-access counts, which stay flat as |D| grows.
//
// The -shards P flag partitions the store: each relation is
// hash-partitioned on the X-attributes of an anchor access constraint (or
// pinned/round-robined when no anchor exists), queries scatter-gather
// their probes across the shards — answers are cross-checked against a
// single-store run — and -ingest streams through the shard-parallel write
// path. -v adds the per-relation access breakdown and per-shard balance.
//
// The -data-dir DIR flag makes the store durable: a fresh directory is
// seeded from -dataset/-scale and written as per-shard epoch-0
// checkpoint segments, an existing one is recovered (newest valid
// checkpoint plus replayed WAL tail — the dataset flags are then
// ignored for data, and -shards must match the directory's manifest or
// be omitted). Writes stream through the fsync-per-batch WAL and the
// run checkpoints on exit, so the next invocation replays nothing:
//
//	bqrun -dataset social -scale 0.25 -query q0.sql -data-dir /tmp/bcq -shards 4 -ingest 100000
//	bqrun -query q0.sql -data-dir /tmp/bcq        # recovers, runs, checkpoints
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"strings"
	"time"

	"bcq"
	"bcq/internal/datagen"
	"bcq/internal/engine"
	"bcq/internal/plan"
	"bcq/internal/querygen"
	"bcq/internal/shard"
)

func main() {
	dataset := flag.String("dataset", "social", "dataset: social | tfacc | mot | tpch")
	scale := flag.Float64("scale", 0.25, "scale factor (the paper varies 2⁻⁵ … 1)")
	queryPath := flag.String("query", "", "path to an SPC query file")
	workload := flag.Bool("workload", false, "run the generated 15-query workload instead of -query")
	budget := flag.Int64("budget", 2_000_000, "baseline tuple budget (0 = unlimited)")
	parallel := flag.Int("parallel", 1, "bounded-executor probe workers (1 = sequential)")
	ingest := flag.Int("ingest", 0, "live mode: stream N inserts while queries run against pinned snapshots")
	shards := flag.Int("shards", 1, "partition the store into P shards (1 = single store)")
	dataDir := flag.String("data-dir", "", "durable store directory: seed it fresh or recover it, checkpoint on exit")
	limit := flag.Int("limit", 0, "early termination: stop each query after N answers (0 = all), reporting the probes saved")
	planTier := flag.String("plan-tier", "optimized", "cold-prepare planning tier: optimized | greedy | tiered (tiered serves the greedy plan first, upgrades in the background and re-runs after the upgrade lands)")
	explain := flag.Bool("explain", false, "print each query's cost-based plan with estimated and actual per-step fetches")
	trace := flag.Bool("trace", false, "run each query traced and print its span tree (prepare → waves → fetch/verify → shards)")
	traceOut := flag.String("trace-out", "", "write each query's span tree as one JSON line to this file (implies tracing)")
	verbose := flag.Bool("v", false, "print per-relation access breakdown and per-shard balance")
	flag.Parse()
	shardsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsSet = true
		}
	})

	if err := run(config{
		dataset:   *dataset,
		scale:     *scale,
		query:     *queryPath,
		workload:  *workload,
		budget:    *budget,
		parallel:  *parallel,
		ingest:    *ingest,
		shards:    *shards,
		shardsSet: shardsSet,
		dataDir:   *dataDir,
		limit:     *limit,
		planTier:  *planTier,
		explain:   *explain,
		trace:     *trace,
		traceOut:  *traceOut,
		verbose:   *verbose,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "bqrun:", err)
		os.Exit(1)
	}
}

// config carries the validated flag set.
type config struct {
	dataset   string
	scale     float64
	query     string
	workload  bool
	budget    int64
	parallel  int
	ingest    int
	shards    int
	shardsSet bool
	dataDir   string
	limit     int
	planTier  string
	explain   bool
	trace     bool
	traceOut  string
	verbose   bool

	// traceW is the open -trace-out sink (set by run, not a flag).
	traceW io.Writer
}

// validate rejects flag values whose behavior would otherwise be
// undefined (a zero-width worker pool, negative ingest, a zero-shard
// partition).
func (c config) validate() error {
	if c.parallel < 1 {
		return fmt.Errorf("-parallel %d: probe worker count must be ≥ 1 (1 = sequential)", c.parallel)
	}
	if c.ingest < 0 {
		return fmt.Errorf("-ingest %d: insert count must be ≥ 0 (0 = static mode)", c.ingest)
	}
	if c.shards < 1 {
		return fmt.Errorf("-shards %d: shard count must be ≥ 1 (1 = single store)", c.shards)
	}
	if c.limit < 0 {
		return fmt.Errorf("-limit %d: answer limit must be ≥ 0 (0 = all answers)", c.limit)
	}
	if c.limit > 0 && (c.shards > 1 || c.ingest > 0 || c.dataDir != "") {
		return fmt.Errorf("-limit combines only with the static single-store mode (drop -shards/-ingest/-data-dir)")
	}
	if c.traceOut != "" && (c.shards > 1 || c.ingest > 0 || c.dataDir != "") {
		return fmt.Errorf("-trace-out combines only with the static single-store mode (drop -shards/-ingest/-data-dir)")
	}
	if c.scale <= 0 {
		return fmt.Errorf("-scale %g: scale factor must be > 0", c.scale)
	}
	switch c.planTier {
	case "", "optimized", "greedy", "tiered":
	default:
		return fmt.Errorf("-plan-tier %q: must be optimized, greedy or tiered", c.planTier)
	}
	return nil
}

// planMode maps -plan-tier onto the engine's planning mode.
func (c config) planMode() engine.PlanMode {
	switch c.planTier {
	case "greedy":
		return engine.PlanGreedy
	case "tiered":
		return engine.PlanTiered
	default:
		return engine.PlanOptimized
	}
}

// engineOptions is the engine configuration every bqrun mode shares.
func (c config) engineOptions() engine.Options {
	return engine.Options{Parallelism: c.parallel, PlanMode: c.planMode()}
}

func pickDataset(name string) (*datagen.Dataset, error) {
	switch name {
	case "social":
		return datagen.Social(), nil
	case "tfacc":
		return datagen.TFACC(), nil
	case "mot":
		return datagen.MOT(), nil
	case "tpch":
		return datagen.TPCH(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

func run(c config) error {
	if err := c.validate(); err != nil {
		return err
	}
	ds, err := pickDataset(c.dataset)
	if err != nil {
		return err
	}

	if c.dataDir != "" {
		queries, err := loadQueries(ds, c)
		if err != nil {
			return err
		}
		return runDurable(ds, queries, c)
	}

	fmt.Printf("building %s at scale %g ...\n", ds.Name, c.scale)
	start := time.Now()
	db, err := ds.Build(c.scale)
	if err != nil {
		return err
	}
	fmt.Printf("built |D| = %d tuples in %v\n\n", db.NumTuples(), time.Since(start).Round(time.Millisecond))

	if c.traceOut != "" {
		f, err := os.Create(c.traceOut)
		if err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		defer f.Close()
		c.traceW = f
	}

	queries, err := loadQueries(ds, c)
	if err != nil {
		return err
	}

	if c.shards > 1 {
		return runSharded(ds, db, queries, c)
	}

	var (
		eng *engine.Engine
		ld  *bcq.LiveDatabase
	)
	if c.ingest > 0 {
		ld, err = bcq.NewLiveDatabase(db, ds.Access, bcq.LiveOptions{})
		if err != nil {
			return err
		}
		eng, err = engine.NewLive(ld, c.engineOptions())
	} else {
		eng, err = engine.New(ds.Catalog, ds.Access, db, c.engineOptions())
	}
	if err != nil {
		return err
	}

	if c.ingest > 0 {
		if err := runIngest(eng, ld, queries, c.ingest); err != nil {
			return err
		}
	} else {
		for _, q := range queries {
			if err := runOne(ds, eng, q, c); err != nil {
				return err
			}
		}
	}
	if c.verbose {
		if ld != nil {
			printRelStats(ld.RelStats())
		} else {
			printRelStats(eng.Database().RelStats())
		}
	}
	eng.DrainUpgrades()
	st := eng.Stats()
	fmt.Printf("engine: %d prepares (%d planned, %d cache hits), %d executions\n",
		st.Prepares, st.CacheMisses, st.CacheHits, st.Execs)
	if eng.PlanMode() == engine.PlanTiered {
		fmt.Printf("planner: tiered — %d background upgrades installed, %d discarded\n",
			st.Upgrades, st.UpgradesDiscarded)
	}
	return nil
}

// loadQueries resolves -workload or -query into the query list.
func loadQueries(ds *datagen.Dataset, c config) ([]*bcq.Query, error) {
	switch {
	case c.workload:
		ws, err := querygen.Workload(ds, querygen.Seed)
		if err != nil {
			return nil, err
		}
		var queries []*bcq.Query
		for _, w := range ws {
			queries = append(queries, w.Query)
		}
		return queries, nil
	case c.query != "":
		src, err := os.ReadFile(c.query)
		if err != nil {
			return nil, err
		}
		q, err := bcq.ParseQuery(string(src), ds.Catalog)
		if err != nil {
			return nil, err
		}
		return []*bcq.Query{q}, nil
	default:
		return nil, fmt.Errorf("provide -query FILE or -workload")
	}
}

// runDurable drives -data-dir mode: the store lives on disk as per-shard
// WALs plus checkpoint segments. A directory that already holds a store
// is recovered (the dataset flags then only supply the catalog; -shards
// must agree with the manifest or stay unset); a fresh one is seeded
// from -dataset/-scale. Queries execute through the scatter-gather
// engine, -ingest streams through the fsync-per-batch commit pipeline,
// and the run checkpoints on exit so the next open replays zero records.
func runDurable(ds *datagen.Dataset, queries []*bcq.Query, c config) error {
	var (
		ss  *shard.Store
		rec *shard.Recovery
	)
	if _, merr := shard.ReadManifest(c.dataDir); merr == nil {
		if c.ingest > 0 {
			// The duplicate stream sources tuples from the seeding run's
			// base data, which a recovered store no longer carries.
			return fmt.Errorf("-ingest needs a freshly seeded -data-dir; this one already holds a store (recovery-safe writes go through bqserve /ingest)")
		}
		want := 0 // accept the manifest's count unless -shards was given
		if c.shardsSet {
			want = c.shards
		}
		start := time.Now()
		var err error
		ss, rec, err = shard.Open(c.dataDir, ds.Catalog, ds.Access, shard.Options{Shards: want})
		if err != nil {
			return err
		}
		fmt.Printf("recovered %s in %v: P = %d, |D| = %d tuples (%d WAL ops replayed, %d torn records dropped)\n",
			c.dataDir, time.Since(start).Round(time.Millisecond), ss.NumShards(), ss.NumTuples(),
			rec.ReplayedOps(), rec.TruncatedRecords())
	} else if !errors.Is(merr, fs.ErrNotExist) {
		return merr
	} else {
		fmt.Printf("building %s at scale %g ...\n", ds.Name, c.scale)
		start := time.Now()
		db, err := ds.Build(c.scale)
		if err != nil {
			return err
		}
		fmt.Printf("built |D| = %d tuples in %v\n", db.NumTuples(), time.Since(start).Round(time.Millisecond))
		if ss, err = shard.New(db, ds.Access, shard.Options{Shards: c.shards, Dir: c.dataDir}); err != nil {
			return err
		}
		fmt.Printf("seeded durable store %s: P = %d\n", c.dataDir, c.shards)
	}
	closed := false
	defer func() {
		if !closed {
			ss.Close()
		}
	}()
	fmt.Println()

	eng, err := bcq.NewShardedEngine(ss, c.engineOptions())
	if err != nil {
		return err
	}

	if c.ingest > 0 {
		if err := runShardedIngest(eng, ss, queries, c.ingest); err != nil {
			return err
		}
	} else {
		for _, q := range queries {
			prep, err := eng.PrepareQuery(q)
			if err != nil {
				var nebErr *plan.NotEffectivelyBoundedError
				if errors.As(err, &nebErr) {
					fmt.Printf("== %s: not effectively bounded; skipped in durable mode\n\n", q.Name)
					continue
				}
				return err
			}
			if prep.NumParams() > 0 {
				return fmt.Errorf("query %s has %d unbound placeholders; bqrun runs fully instantiated queries", q.Name, prep.NumParams())
			}
			start := time.Now()
			res, err := prep.Exec()
			if err != nil {
				return err
			}
			fmt.Printf("== %s\n   durable:  %5d answers in %8v — fetched %d tuples (|D_Q| = %d, bound %s)\n\n",
				q.Name, len(res.Tuples), time.Since(start).Round(time.Microsecond), res.Stats.TuplesFetched, res.DQSize, prep.FetchBound())
			if c.explain {
				fmt.Print(indentBlock(prep.Explain(res)))
			}
		}
	}

	if c.verbose {
		printRelStats(ss.RelStats())
		printShardStats(ss.ShardStats())
	}
	eng.DrainUpgrades()
	st := eng.Stats()
	fmt.Printf("engine: %d prepares (%d planned, %d cache hits), %d executions\n",
		st.Prepares, st.CacheMisses, st.CacheHits, st.Execs)
	if eng.PlanMode() == engine.PlanTiered {
		fmt.Printf("planner: tiered — %d background upgrades installed, %d discarded\n",
			st.Upgrades, st.UpgradesDiscarded)
	}

	closed = true
	if err := ss.Close(); err != nil {
		return fmt.Errorf("closing durable store: %w", err)
	}
	fmt.Printf("checkpointed and closed %s\n", c.dataDir)
	return nil
}

// runSharded drives shard mode: the dataset is partitioned into c.shards
// shards, every query is answered through scatter-gather execution and
// cross-checked against a single-store engine over the same data, and
// with -ingest the duplicate stream commits through the shard-parallel
// write path while readers keep executing on pinned epoch vectors.
func runSharded(ds *datagen.Dataset, db *bcq.Database, queries []*bcq.Query, c config) error {
	ss, err := bcq.NewShardedDatabase(db, ds.Access, bcq.ShardOptions{Shards: c.shards})
	if err != nil {
		return err
	}
	eng, err := bcq.NewShardedEngine(ss, c.engineOptions())
	if err != nil {
		return err
	}
	fmt.Printf("sharded: P = %d\n", c.shards)
	for _, rs := range ds.Catalog.Relations() {
		pl, err := ss.PlacementOf(rs.Name())
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s %s\n", rs.Name(), pl)
	}
	printShardSizes(ss.ShardSizes())
	fmt.Println()

	if c.ingest > 0 {
		if err := runShardedIngest(eng, ss, queries, c.ingest); err != nil {
			return err
		}
	} else {
		// Static mode: cross-check every answer against a single store.
		ref, err := engine.New(ds.Catalog, ds.Access, db, engine.Options{Parallelism: c.parallel})
		if err != nil {
			return err
		}
		for _, q := range queries {
			prep, err := eng.PrepareQuery(q)
			if err != nil {
				var nebErr *plan.NotEffectivelyBoundedError
				if errors.As(err, &nebErr) {
					fmt.Printf("== %s: not effectively bounded; skipped in shard mode\n\n", q.Name)
					continue
				}
				return err
			}
			if prep.NumParams() > 0 {
				return fmt.Errorf("query %s has %d unbound placeholders; bqrun runs fully instantiated queries", q.Name, prep.NumParams())
			}
			start := time.Now()
			res, err := prep.Exec()
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			fmt.Printf("== %s\n   sharded:  %5d answers in %8v — fetched %d tuples (|D_Q| = %d, bound %s)\n",
				q.Name, len(res.Tuples), elapsed.Round(time.Microsecond), res.Stats.TuplesFetched, res.DQSize, prep.FetchBound())
			if c.explain {
				fmt.Print(indentBlock(prep.Explain(res)))
			}
			rprep, err := ref.PrepareQuery(q)
			if err != nil {
				return err
			}
			want, err := rprep.Exec()
			if err != nil {
				return err
			}
			if renderResult(res) != renderResult(want) {
				return fmt.Errorf("SHARDED MISMATCH on %s:\n sharded: %s\n single:  %s", q.Name, renderResult(res), renderResult(want))
			}
			fmt.Printf("   matches single-store execution byte-for-byte ✓\n\n")
		}
	}

	if c.verbose {
		printRelStats(ss.RelStats())
		printShardStats(ss.ShardStats())
	}
	eng.DrainUpgrades()
	st := eng.Stats()
	fmt.Printf("engine: %d prepares (%d planned, %d cache hits), %d executions\n",
		st.Prepares, st.CacheMisses, st.CacheHits, st.Execs)
	if eng.PlanMode() == engine.PlanTiered {
		fmt.Printf("planner: tiered — %d background upgrades installed, %d discarded\n",
			st.Upgrades, st.UpgradesDiscarded)
	}
	return nil
}

// indentBlock indents every line of a plan explanation to align with the
// per-query report lines.
func indentBlock(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "   " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// renderResult canonicalizes a result for byte-identity comparison.
func renderResult(r *bcq.Result) string {
	return fmt.Sprintf("cols=%v tuples=%v stats=%+v dq=%d", r.Cols, r.Tuples, r.Stats, r.DQSize)
}

// runShardedIngest is live mode over the sharded store: the shared
// driver streams duplicates through Apply (committing shard-parallel)
// while readers pin epoch vectors.
func runShardedIngest(eng *engine.Engine, ss *bcq.ShardedDatabase, queries []*bcq.Query, n int) error {
	return driveIngest(eng, ingestTarget{
		base:  ss.Base(),
		apply: ss.Apply,
		describe: func() string {
			return fmt.Sprintf("|D| = %d across %d shards", ss.NumTuples(), ss.NumShards())
		},
		report: func(elapsed time.Duration, served int) {
			ig := ss.IngestStats()
			fmt.Printf("      ingested in %v (%.0f ops/s, %d shard epochs, %d flattens); served %d evaluations concurrently\n",
				elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), ig.Epochs, ig.Flattens, served)
			fmt.Printf("      |D| now %d\n", ss.NumTuples())
			printShardSizes(ss.ShardSizes())
		},
	}, queries, n)
}

// printRelStats renders the per-relation access breakdown (-v).
func printRelStats(rel map[string]bcq.Stats) {
	names := make([]string, 0, len(rel))
	for name := range rel {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("per-relation access breakdown:")
	fmt.Printf("  %-16s %12s %12s %12s\n", "relation", "lookups", "fetched", "scanned")
	for _, name := range names {
		s := rel[name]
		fmt.Printf("  %-16s %12d %12d %12d\n", name, s.IndexLookups, s.TuplesFetched, s.TuplesScanned)
	}
	fmt.Println()
}

// printShardSizes renders per-shard live tuple counts (-shards).
func printShardSizes(sizes []int64) {
	fmt.Printf("  shard balance (tuples):")
	for s, n := range sizes {
		fmt.Printf(" [%d] %d", s, n)
	}
	fmt.Println()
}

// printShardStats renders per-shard access counters (-shards -v).
func printShardStats(stats []bcq.Stats) {
	fmt.Println("per-shard access breakdown:")
	fmt.Printf("  %-6s %12s %12s %12s\n", "shard", "lookups", "fetched", "scanned")
	for s, st := range stats {
		fmt.Printf("  %-6d %12d %12d %12d\n", s, st.IndexLookups, st.TuplesFetched, st.TuplesScanned)
	}
	fmt.Println()
}

// runLimited re-runs a query through the early-terminating stream with
// -limit and cross-checks the page against the full answer: every
// limited answer must be a full answer, the count must be
// min(limit, |Q(D)|), and a binding limit must fetch no more tuples
// than the full run (strictly fewer probes show up as "skipped").
func runLimited(prep *engine.Prepared, full *bcq.Result, c config) error {
	start := time.Now()
	lres, err := prep.ExecLimit(c.limit)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	var skipped int64
	for _, st := range lres.StepStats {
		skipped += st.Skipped
	}
	fmt.Printf("   limit %d:  %5d answers in %8v — fetched %d tuples, ≥ %d probes skipped\n",
		c.limit, len(lres.Tuples), elapsed.Round(time.Microsecond), lres.Stats.TuplesFetched, skipped)

	want := len(full.Tuples)
	if c.limit < want {
		want = c.limit
	}
	if len(lres.Tuples) != want {
		return fmt.Errorf("LIMIT MISMATCH: limit %d returned %d answers, expected %d", c.limit, len(lres.Tuples), want)
	}
	inFull := make(map[string]bool, len(full.Tuples))
	for _, t := range full.Tuples {
		inFull[fmt.Sprint(t)] = true
	}
	for _, t := range lres.Tuples {
		if !inFull[fmt.Sprint(t)] {
			return fmt.Errorf("LIMIT MISMATCH: limited answer %v is not a full answer", t)
		}
	}
	if lres.Stats.TuplesFetched > full.Stats.TuplesFetched {
		return fmt.Errorf("LIMIT MISMATCH: limited run fetched %d tuples > full run's %d",
			lres.Stats.TuplesFetched, full.Stats.TuplesFetched)
	}
	fmt.Printf("   limited answers ⊆ full answers ✓\n")
	return nil
}

// ingestBatch is the write-batch size of live mode: one epoch per batch.
const ingestBatch = 64

// runIngest is live mode over the single live store.
func runIngest(eng *engine.Engine, ld *bcq.LiveDatabase, queries []*bcq.Query, n int) error {
	return driveIngest(eng, ingestTarget{
		base:  ld.Base(),
		apply: func(ops []bcq.LiveOp) error { _, err := ld.Apply(ops); return err },
		describe: func() string {
			return fmt.Sprintf("|D| = %d", ld.Snapshot().NumTuples())
		},
		report: func(elapsed time.Duration, served int) {
			ig := ld.IngestStats()
			fmt.Printf("      ingested in %v (%.0f ops/s, %d epochs, %d flattens); served %d evaluations concurrently\n",
				elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), ig.Epochs, ig.Flattens, served)
			fmt.Printf("      |D| now %d\n", ld.Snapshot().NumTuples())
		},
	}, queries, n)
}

// ingestTarget abstracts the store live mode streams into — the single
// live store or the sharded store — so one driver covers both.
type ingestTarget struct {
	// base is the original loaded database (source of duplicate tuples).
	base *bcq.Database
	// apply commits one write batch.
	apply func([]bcq.LiveOp) error
	// describe renders the pre-ingest state for the banner line.
	describe func() string
	// report prints the mode-specific ingest statistics.
	report func(elapsed time.Duration, served int)
}

// driveIngest is live mode: it measures each query's answers and tuple
// accesses on the pre-ingest state, streams n inserts (duplicates of
// base tuples — schema-safe by construction) while a reader goroutine
// keeps executing the queries against pinned views, then re-measures.
// Bounded queries fetch the same number of tuples at the grown |D|.
func driveIngest(eng *engine.Engine, tgt ingestTarget, queries []*bcq.Query, n int) error {
	var preps []*engine.Prepared
	for _, q := range queries {
		prep, err := eng.PrepareQuery(q)
		if err != nil {
			var nebErr *plan.NotEffectivelyBoundedError
			if errors.As(err, &nebErr) {
				fmt.Printf("== %s: not effectively bounded; skipped in live mode\n", q.Name)
				continue
			}
			return err
		}
		if prep.NumParams() > 0 {
			return fmt.Errorf("query %s has %d unbound placeholders; bqrun runs fully instantiated queries", q.Name, prep.NumParams())
		}
		preps = append(preps, prep)
	}
	if len(preps) == 0 {
		return fmt.Errorf("no effectively bounded queries to serve during ingest")
	}

	type baselineRun struct {
		answers int
		fetched int64
	}
	before := make([]baselineRun, len(preps))
	for i, p := range preps {
		res, err := p.Exec()
		if err != nil {
			return err
		}
		before[i] = baselineRun{len(res.Tuples), res.Stats.TuplesFetched}
	}

	// Duplicate existing base tuples round-robin across relations: a
	// duplicate of a live (X, Y) pair can never add a distinct Y-value,
	// so ingest at full speed violates no constraint — and it is exactly
	// the duplication mechanism datagen grows |D| with (DESIGN.md §2.2).
	base := tgt.base
	var rels []string
	for _, rs := range base.Catalog().Relations() {
		if len(base.MustRelation(rs.Name()).Tuples) > 0 {
			rels = append(rels, rs.Name())
		}
	}
	if len(rels) == 0 {
		return fmt.Errorf("dataset has no tuples to duplicate")
	}

	fmt.Printf("live: %s; ingesting %d duplicate tuples (batches of %d) with concurrent reads ...\n",
		tgt.describe(), n, ingestBatch)

	type readerReport struct {
		served int
		err    error
	}
	done := make(chan struct{})
	reader := make(chan readerReport, 1)
	go func() {
		count := 0
		for {
			select {
			case <-done:
				reader <- readerReport{served: count}
				return
			default:
			}
			for _, p := range preps {
				if _, err := p.Exec(); err != nil {
					reader <- readerReport{served: count, err: fmt.Errorf("concurrent read: %w", err)}
					return
				}
				count++
			}
		}
	}()

	start := time.Now()
	ops := make([]bcq.LiveOp, 0, ingestBatch)
	for i := 0; i < n; {
		ops = ops[:0]
		for ; i < n && len(ops) < ingestBatch; i++ {
			rel := rels[i%len(rels)]
			tuples := base.MustRelation(rel).Tuples
			ops = append(ops, bcq.InsertOp(rel, tuples[(i/len(rels))%len(tuples)]))
		}
		if err := tgt.apply(ops); err != nil {
			close(done)
			<-reader
			return err
		}
	}
	elapsed := time.Since(start)
	close(done)
	rep := <-reader
	if rep.err != nil {
		return rep.err
	}

	tgt.report(elapsed, rep.served)
	fmt.Println()

	flat := true
	for i, p := range preps {
		res, err := p.Exec()
		if err != nil {
			return err
		}
		mark := "flat ✓"
		if res.Stats.TuplesFetched != before[i].fetched {
			mark = fmt.Sprintf("CHANGED from %d", before[i].fetched)
			flat = false
		}
		fmt.Printf("== %s: %d answers (was %d), fetched %d tuples — %s (bound %s)\n",
			p.Query().Name, len(res.Tuples), before[i].answers, res.Stats.TuplesFetched, mark, p.FetchBound())
	}
	fmt.Println()
	if !flat {
		return fmt.Errorf("tuple accesses changed under duplicate-only ingest; bounded evaluation should be flat in |D|")
	}
	return nil
}

func runOne(ds *datagen.Dataset, eng *engine.Engine, q *bcq.Query, c config) error {
	fmt.Printf("== %s\n   %s\n", q.Name, q)
	// -trace (and -trace-out) threads one trace through prepare and
	// execution; the span tree (prepare → waves → fetch/verify → shards)
	// prints after the run, and -trace-out appends it as one JSON line.
	var tr *bcq.Trace
	if c.trace || c.traceW != nil {
		tr = bcq.NewTrace("", q.Name)
	}
	prep, err := eng.PrepareQueryTraced(q, tr)
	if err != nil {
		var nebErr *plan.NotEffectivelyBoundedError
		if errors.As(err, &nebErr) {
			fmt.Printf("   not effectively bounded (%v); skipping bounded run\n\n", err)
			return nil
		}
		return err
	}
	if prep.NumParams() > 0 {
		return fmt.Errorf("query %s has %d unbound placeholders; bqrun runs fully instantiated queries", q.Name, prep.NumParams())
	}
	coldTier := prep.PlanTier()
	start := time.Now()
	res, err := prep.ExecTrace(tr)
	if err != nil {
		return err
	}
	evalTime := time.Since(start)
	tr.Finish()
	if c.traceW != nil {
		if _, err := fmt.Fprintf(c.traceW, "%s\n", tr.JSON()); err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
	}
	fmt.Printf("   evalDQ:   %5d answers in %8v — fetched %d tuples (|D_Q| = %d, bound %s)\n",
		len(res.Tuples), evalTime.Round(time.Microsecond), res.Stats.TuplesFetched, res.DQSize, prep.FetchBound())
	if eng.PlanMode() != engine.PlanOptimized {
		fmt.Printf("   plan tier: %s\n", coldTier)
	}
	if c.explain {
		// Explain renders the span tree itself when the result is traced.
		fmt.Print(indentBlock(prep.Explain(res)))
	} else if c.trace && tr != nil {
		fmt.Print(indentBlock(tr.Tree()))
	}
	if c.limit > 0 {
		if err := runLimited(prep, res, c); err != nil {
			return err
		}
	}
	if eng.PlanMode() == engine.PlanTiered {
		// Wait for the background upgrade and show what the same Prepared
		// executes like after the optimized tier is installed in place.
		eng.DrainUpgrades()
		start := time.Now()
		ures, err := prep.Exec()
		if err != nil {
			return err
		}
		fmt.Printf("   upgraded: %5d answers in %8v — fetched %d tuples (tier %s)\n",
			len(ures.Tuples), time.Since(start).Round(time.Microsecond), ures.Stats.TuplesFetched, prep.PlanTier())
		// Access counts may shrink across the upgrade; the answers must not.
		if fmt.Sprintf("%v|%v", res.Cols, res.Tuples) != fmt.Sprintf("%v|%v", ures.Cols, ures.Tuples) {
			return fmt.Errorf("TIER MISMATCH on %s: greedy answers diverge from upgraded answers", q.Name)
		}
	}

	an, err := bcq.Analyze(ds.Catalog, q, ds.Access)
	if err != nil {
		return err
	}
	start = time.Now()
	bres, err := bcq.ExecuteBaseline(an, eng.Database(), bcq.BaselineOptions{Budget: c.budget})
	baseTime := time.Since(start)
	switch {
	case err != nil:
		fmt.Printf("   baseline: DNF after %v (%v)\n", baseTime.Round(time.Microsecond), err)
	default:
		fmt.Printf("   baseline: %5d answers in %8v — touched %d tuples\n",
			len(bres.Tuples), baseTime.Round(time.Microsecond), bres.Stats.Total())
		if len(bres.Tuples) != len(res.Tuples) {
			return fmt.Errorf("ANSWER MISMATCH on %s: evalDQ %d vs baseline %d", q.Name, len(res.Tuples), len(bres.Tuples))
		}
		fmt.Printf("   answers agree ✓\n")
	}
	fmt.Println()
	return nil
}
