// Command bqrun generates one of the built-in datasets, evaluates a query
// both ways — bounded (evalDQ through the prepared-query engine) and
// conventional (full-data baseline) — and compares answers and data
// access.
//
// Usage:
//
//	bqrun -dataset social -scale 0.5 -query q0.sql
//	bqrun -dataset tfacc -scale 1 -workload       # run the 15-query workload
//	bqrun -dataset mot -scale 1 -workload -parallel 8
//	bqrun -dataset social -scale 0.5 -query q0.sql -ingest 100000
//
// Datasets: social (Example 1), tfacc, mot, tpch. The -parallel flag fans
// each plan step's index probes over that many workers; answers are
// byte-identical to a sequential run.
//
// The -ingest N flag switches to live mode: the dataset is wrapped in a
// live store, N tuples are streamed in (duplicates of existing tuples, so
// the access schema is never violated — the same duplication mechanism
// datagen scales |D| with) while the queries keep executing against
// pinned snapshots, and the run reports ingest throughput plus the
// before/after tuple-access counts, which stay flat as |D| grows.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"bcq"
	"bcq/internal/datagen"
	"bcq/internal/engine"
	"bcq/internal/plan"
	"bcq/internal/querygen"
)

func main() {
	dataset := flag.String("dataset", "social", "dataset: social | tfacc | mot | tpch")
	scale := flag.Float64("scale", 0.25, "scale factor (the paper varies 2⁻⁵ … 1)")
	queryPath := flag.String("query", "", "path to an SPC query file")
	workload := flag.Bool("workload", false, "run the generated 15-query workload instead of -query")
	budget := flag.Int64("budget", 2_000_000, "baseline tuple budget (0 = unlimited)")
	parallel := flag.Int("parallel", 1, "bounded-executor probe workers (1 = sequential)")
	ingest := flag.Int("ingest", 0, "live mode: stream N inserts while queries run against pinned snapshots")
	flag.Parse()

	if err := run(*dataset, *scale, *queryPath, *workload, *budget, *parallel, *ingest); err != nil {
		fmt.Fprintln(os.Stderr, "bqrun:", err)
		os.Exit(1)
	}
}

func pickDataset(name string) (*datagen.Dataset, error) {
	switch name {
	case "social":
		return datagen.Social(), nil
	case "tfacc":
		return datagen.TFACC(), nil
	case "mot":
		return datagen.MOT(), nil
	case "tpch":
		return datagen.TPCH(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

func run(dataset string, scale float64, queryPath string, workload bool, budget int64, parallel, ingest int) error {
	ds, err := pickDataset(dataset)
	if err != nil {
		return err
	}
	fmt.Printf("building %s at scale %g ...\n", ds.Name, scale)
	start := time.Now()
	db, err := ds.Build(scale)
	if err != nil {
		return err
	}
	fmt.Printf("built |D| = %d tuples in %v\n\n", db.NumTuples(), time.Since(start).Round(time.Millisecond))

	var (
		eng *engine.Engine
		ld  *bcq.LiveDatabase
	)
	if ingest > 0 {
		ld, err = bcq.NewLiveDatabase(db, ds.Access, bcq.LiveOptions{})
		if err != nil {
			return err
		}
		eng, err = engine.NewLive(ld, engine.Options{Parallelism: parallel})
	} else {
		eng, err = engine.New(ds.Catalog, ds.Access, db, engine.Options{Parallelism: parallel})
	}
	if err != nil {
		return err
	}

	var queries []*bcq.Query
	switch {
	case workload:
		ws, err := querygen.Workload(ds, querygen.Seed)
		if err != nil {
			return err
		}
		for _, w := range ws {
			queries = append(queries, w.Query)
		}
	case queryPath != "":
		src, err := os.ReadFile(queryPath)
		if err != nil {
			return err
		}
		q, err := bcq.ParseQuery(string(src), ds.Catalog)
		if err != nil {
			return err
		}
		queries = append(queries, q)
	default:
		return fmt.Errorf("provide -query FILE or -workload")
	}

	if ingest > 0 {
		if err := runIngest(eng, ld, queries, ingest); err != nil {
			return err
		}
	} else {
		for _, q := range queries {
			if err := runOne(ds, eng, q, budget); err != nil {
				return err
			}
		}
	}
	st := eng.Stats()
	fmt.Printf("engine: %d prepares (%d planned, %d cache hits), %d executions\n",
		st.Prepares, st.CacheMisses, st.CacheHits, st.Execs)
	return nil
}

// ingestBatch is the write-batch size of live mode: one epoch per batch.
const ingestBatch = 64

// runIngest drives live mode: it measures each query's answers and tuple
// accesses on the pre-ingest snapshot, streams n inserts (duplicates of
// base tuples — schema-safe by construction) while a reader goroutine
// keeps executing the queries against pinned snapshots, then re-measures.
// Bounded queries fetch the same number of tuples at the grown |D|.
func runIngest(eng *engine.Engine, ld *bcq.LiveDatabase, queries []*bcq.Query, n int) error {
	var preps []*engine.Prepared
	for _, q := range queries {
		prep, err := eng.PrepareQuery(q)
		if err != nil {
			var nebErr *plan.NotEffectivelyBoundedError
			if errors.As(err, &nebErr) {
				fmt.Printf("== %s: not effectively bounded; skipped in live mode\n", q.Name)
				continue
			}
			return err
		}
		if prep.NumParams() > 0 {
			return fmt.Errorf("query %s has %d unbound placeholders; bqrun runs fully instantiated queries", q.Name, prep.NumParams())
		}
		preps = append(preps, prep)
	}
	if len(preps) == 0 {
		return fmt.Errorf("no effectively bounded queries to serve during ingest")
	}

	type baselineRun struct {
		answers int
		fetched int64
	}
	before := make([]baselineRun, len(preps))
	for i, p := range preps {
		res, err := p.Exec()
		if err != nil {
			return err
		}
		before[i] = baselineRun{len(res.Tuples), res.Stats.TuplesFetched}
	}

	// Duplicate existing base tuples round-robin across relations: a
	// duplicate of a live (X, Y) pair can never add a distinct Y-value,
	// so ingest at full speed violates no constraint — and it is exactly
	// the duplication mechanism datagen grows |D| with (DESIGN.md §2.2).
	base := ld.Base()
	var rels []string
	for _, rs := range base.Catalog().Relations() {
		if len(base.MustRelation(rs.Name()).Tuples) > 0 {
			rels = append(rels, rs.Name())
		}
	}
	if len(rels) == 0 {
		return fmt.Errorf("dataset has no tuples to duplicate")
	}

	fmt.Printf("live: |D| = %d; ingesting %d duplicate tuples (batches of %d) with concurrent reads ...\n",
		ld.Snapshot().NumTuples(), n, ingestBatch)

	type readerReport struct {
		served int
		err    error
	}
	done := make(chan struct{})
	reader := make(chan readerReport, 1)
	go func() {
		count := 0
		for {
			select {
			case <-done:
				reader <- readerReport{served: count}
				return
			default:
			}
			for _, p := range preps {
				if _, err := p.Exec(); err != nil {
					reader <- readerReport{served: count, err: fmt.Errorf("concurrent read: %w", err)}
					return
				}
				count++
			}
		}
	}()

	start := time.Now()
	ops := make([]bcq.LiveOp, 0, ingestBatch)
	for i := 0; i < n; {
		ops = ops[:0]
		for ; i < n && len(ops) < ingestBatch; i++ {
			rel := rels[i%len(rels)]
			tuples := base.MustRelation(rel).Tuples
			ops = append(ops, bcq.InsertOp(rel, tuples[(i/len(rels))%len(tuples)]))
		}
		if _, err := ld.Apply(ops); err != nil {
			close(done)
			return err
		}
	}
	elapsed := time.Since(start)
	close(done)
	rep := <-reader
	if rep.err != nil {
		return rep.err
	}

	ig := ld.IngestStats()
	fmt.Printf("      ingested in %v (%.0f ops/s, %d epochs, %d flattens); served %d evaluations concurrently\n",
		elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), ig.Epochs, ig.Flattens, rep.served)
	fmt.Printf("      |D| now %d\n\n", ld.Snapshot().NumTuples())

	flat := true
	for i, p := range preps {
		res, err := p.Exec()
		if err != nil {
			return err
		}
		mark := "flat ✓"
		if res.Stats.TuplesFetched != before[i].fetched {
			mark = fmt.Sprintf("CHANGED from %d", before[i].fetched)
			flat = false
		}
		fmt.Printf("== %s: %d answers (was %d), fetched %d tuples — %s (bound %s)\n",
			p.Query().Name, len(res.Tuples), before[i].answers, res.Stats.TuplesFetched, mark, p.FetchBound())
	}
	fmt.Println()
	if !flat {
		return fmt.Errorf("tuple accesses changed under duplicate-only ingest; bounded evaluation should be flat in |D|")
	}
	return nil
}

func runOne(ds *datagen.Dataset, eng *engine.Engine, q *bcq.Query, budget int64) error {
	fmt.Printf("== %s\n   %s\n", q.Name, q)
	prep, err := eng.PrepareQuery(q)
	if err != nil {
		var nebErr *plan.NotEffectivelyBoundedError
		if errors.As(err, &nebErr) {
			fmt.Printf("   not effectively bounded (%v); skipping bounded run\n\n", err)
			return nil
		}
		return err
	}
	if prep.NumParams() > 0 {
		return fmt.Errorf("query %s has %d unbound placeholders; bqrun runs fully instantiated queries", q.Name, prep.NumParams())
	}
	start := time.Now()
	res, err := prep.Exec()
	if err != nil {
		return err
	}
	evalTime := time.Since(start)
	fmt.Printf("   evalDQ:   %5d answers in %8v — fetched %d tuples (|D_Q| = %d, bound %s)\n",
		len(res.Tuples), evalTime.Round(time.Microsecond), res.Stats.TuplesFetched, res.DQSize, prep.FetchBound())

	an, err := bcq.Analyze(ds.Catalog, q, ds.Access)
	if err != nil {
		return err
	}
	start = time.Now()
	bres, err := bcq.ExecuteBaseline(an, eng.Database(), bcq.BaselineOptions{Budget: budget})
	baseTime := time.Since(start)
	switch {
	case err != nil:
		fmt.Printf("   baseline: DNF after %v (%v)\n", baseTime.Round(time.Microsecond), err)
	default:
		fmt.Printf("   baseline: %5d answers in %8v — touched %d tuples\n",
			len(bres.Tuples), baseTime.Round(time.Microsecond), bres.Stats.Total())
		if len(bres.Tuples) != len(res.Tuples) {
			return fmt.Errorf("ANSWER MISMATCH on %s: evalDQ %d vs baseline %d", q.Name, len(res.Tuples), len(bres.Tuples))
		}
		fmt.Printf("   answers agree ✓\n")
	}
	fmt.Println()
	return nil
}
