package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func cfg(mut func(*config)) config {
	c := config{
		dataset:  "social",
		scale:    1.0 / 32,
		query:    "../../testdata/q0.sql",
		budget:   100_000,
		parallel: 1,
		shards:   1,
	}
	if mut != nil {
		mut(&c)
	}
	return c
}

func TestRunSingleQuery(t *testing.T) {
	if err := run(cfg(nil)); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleQueryParallel(t *testing.T) {
	if err := run(cfg(func(c *config) { c.parallel = 4 })); err != nil {
		t.Fatal(err)
	}
}

func TestRunIngest(t *testing.T) {
	if err := run(cfg(func(c *config) { c.parallel = 2; c.ingest = 5_000 })); err != nil {
		t.Fatal(err)
	}
}

func TestRunSharded(t *testing.T) {
	if err := run(cfg(func(c *config) { c.shards = 3; c.parallel = 2; c.verbose = true })); err != nil {
		t.Fatal(err)
	}
}

func TestRunShardedIngest(t *testing.T) {
	if err := run(cfg(func(c *config) { c.shards = 4; c.parallel = 2; c.ingest = 5_000 })); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a dataset and runs 15 queries")
	}
	if err := run(config{dataset: "mot", scale: 1.0 / 32, workload: true, budget: 200_000, parallel: 2, shards: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkloadSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a dataset and runs 15 queries at two shard counts")
	}
	if err := run(config{dataset: "tfacc", scale: 1.0 / 32, workload: true, budget: 200_000, parallel: 2, shards: 3, verbose: true}); err != nil {
		t.Fatal(err)
	}
}

// TestRunTraceOut: -trace-out writes one machine-readable span tree per
// query — valid JSON with a root span whose name is the query's.
func TestRunTraceOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "traces.jsonl")
	if err := run(cfg(func(c *config) { c.traceOut = out })); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var tr struct {
			TraceID string `json:"trace_id"`
			Root    struct {
				Name     string          `json:"name"`
				Children json.RawMessage `json:"children"`
			} `json:"root"`
		}
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("trace line %d undecodable: %v: %s", lines, err, sc.Text())
		}
		if tr.TraceID == "" || tr.Root.Name == "" {
			t.Errorf("trace line %d missing trace_id or root span name: %s", lines, sc.Text())
		}
	}
	if lines != 1 {
		t.Errorf("one query wrote %d trace lines, want 1", lines)
	}
}

// TestRunDurableCycle drives the -data-dir lifecycle: a fresh directory
// is seeded (with -ingest streaming through the WAL commit pipeline and
// a checkpoint on exit), a second run recovers it and re-answers the
// query, and a -shards value that disagrees with the manifest is
// rejected.
func TestRunDurableCycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")

	seed := cfg(func(c *config) {
		c.shards, c.shardsSet = 3, true
		c.dataDir = dir
		c.ingest = 2_000
		c.parallel = 2
	})
	if err := run(seed); err != nil {
		t.Fatalf("seeding run: %v", err)
	}
	m, err := os.Stat(filepath.Join(dir, "MANIFEST.json"))
	if err != nil || m.Size() == 0 {
		t.Fatalf("seeding run left no manifest: %v", err)
	}

	wrong := cfg(func(c *config) {
		c.shards, c.shardsSet = 2, true
		c.dataDir = dir
	})
	if err := run(wrong); err == nil {
		t.Fatal("recovery with mismatched -shards was accepted")
	}

	// -shards unset: the manifest's count wins; queries and -v run
	// against the recovered store and the run closes cleanly.
	again := cfg(func(c *config) {
		c.dataDir = dir
		c.verbose = true
	})
	if err := run(again); err != nil {
		t.Fatalf("recovery run: %v", err)
	}

	// A recovered store has no seeding base to duplicate from.
	if err := run(cfg(func(c *config) { c.dataDir = dir; c.ingest = 100 })); err == nil {
		t.Fatal("-ingest into a recovered store was accepted")
	}
}

func TestRunBadInputs(t *testing.T) {
	if err := run(config{dataset: "nope", scale: 1, workload: true, parallel: 1, shards: 1}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run(cfg(func(c *config) { c.query = "" })); err == nil {
		t.Error("missing query accepted")
	}
	if err := run(cfg(func(c *config) { c.query = "missing.sql" })); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*config)
	}{
		{"parallel=0", func(c *config) { c.parallel = 0 }},
		{"parallel=-2", func(c *config) { c.parallel = -2 }},
		{"ingest=-1", func(c *config) { c.ingest = -1 }},
		{"shards=0", func(c *config) { c.shards = 0 }},
		{"shards=-3", func(c *config) { c.shards = -3 }},
		{"scale=0", func(c *config) { c.scale = 0 }},
		{"trace-out+shards", func(c *config) { c.traceOut = "t.jsonl"; c.shards = 2 }},
		{"trace-out+ingest", func(c *config) { c.traceOut = "t.jsonl"; c.ingest = 10 }},
		{"trace-out+data-dir", func(c *config) { c.traceOut = "t.jsonl"; c.dataDir = "d" }},
		{"limit+data-dir", func(c *config) { c.limit = 5; c.dataDir = "d" }},
	}
	for _, tc := range cases {
		if err := run(cfg(tc.mut)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
