package main

import "testing"

func TestRunSingleQuery(t *testing.T) {
	if err := run("social", 1.0/32, "../../testdata/q0.sql", false, 100_000, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleQueryParallel(t *testing.T) {
	if err := run("social", 1.0/32, "../../testdata/q0.sql", false, 100_000, 4, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunIngest(t *testing.T) {
	if err := run("social", 1.0/32, "../../testdata/q0.sql", false, 100_000, 2, 5_000); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a dataset and runs 15 queries")
	}
	if err := run("mot", 1.0/32, "", true, 200_000, 2, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadInputs(t *testing.T) {
	if err := run("nope", 1, "", true, 0, 1, 0); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("social", 1.0/32, "", false, 0, 1, 0); err == nil {
		t.Error("missing query accepted")
	}
	if err := run("social", 1.0/32, "missing.sql", false, 0, 1, 0); err == nil {
		t.Error("missing file accepted")
	}
}
