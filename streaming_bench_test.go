// Benchmarks for the streaming executor: time-to-first-tuple, total
// latency and allocation for streaming vs materializing execution, at
// several result sizes, plus the real workloads.
//
//	go test -bench BenchmarkStreaming -benchmem
//
// Custom metrics:
//
//	ttft_us    — time from opening the stream to the first answer
//	total_ms   — wall time to consume the whole run
//
// TestStreamingBenchEmit measures the same matrix once with
// runtime.MemStats deltas and — when STREAMING_BENCH_JSON names a path —
// writes the perf trajectory to BENCH_streaming.json.
package bcq

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"bcq/internal/datagen"
	"bcq/internal/querygen"
)

// streamBenchDDL is a synthetic fan-out scene: a bounded domain of
// groups, each fanning out to `fan` rows, so |Q(D)| = groups × fan is
// dialed precisely and the full answer is large while every probe stays
// bounded.
const streamBenchDDL = `
relation edge(src, dst)

constraint edge: () -> (src, 4000)
constraint edge: (src) -> (dst, 40)
`

const streamBenchQuery = `
query FAN:
select e.src, e.dst from edge as e
`

// streamScene builds the fan-out scene with groups × fan answers.
func streamScene(tb testing.TB, groups, fan int) *Prepared {
	tb.Helper()
	cat, acc, err := ParseDDL(streamBenchDDL)
	if err != nil {
		tb.Fatal(err)
	}
	db := NewDatabase(cat)
	for s := 0; s < groups; s++ {
		for d := 0; d < fan; d++ {
			if err := db.Insert("edge", Tuple{Int(int64(s)), Int(int64(d))}); err != nil {
				tb.Fatal(err)
			}
		}
	}
	eng, err := NewEngine(cat, acc, db, EngineOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	q, err := ParseQuery(streamBenchQuery, cat)
	if err != nil {
		tb.Fatal(err)
	}
	prep, err := eng.PrepareQuery(q)
	if err != nil {
		tb.Fatal(err)
	}
	return prep
}

// streamBenchSizes is the result-size sweep.
var streamBenchSizes = []struct {
	name        string
	groups, fan int
}{
	{"1k", 100, 10},
	{"10k", 500, 20},
	{"90k", 3000, 30},
}

// BenchmarkStreamingMaterialize is the baseline: classic materializing
// execution (full fetch, join, sort, dedup) per iteration.
func BenchmarkStreamingMaterialize(b *testing.B) {
	for _, sz := range streamBenchSizes {
		b.Run(sz.name, func(b *testing.B) {
			prep := streamScene(b, sz.groups, sz.fan)
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				res, err := prep.Exec()
				if err != nil {
					b.Fatal(err)
				}
				n = len(res.Tuples)
			}
			if n != sz.groups*sz.fan {
				b.Fatalf("answer size %d, want %d", n, sz.groups*sz.fan)
			}
		})
	}
}

// BenchmarkStreamingConsume pulls the stream to exhaustion, holding no
// answers — the shape of a serving loop writing tuples to a client.
// ttft_us reports the time to the first answer.
func BenchmarkStreamingConsume(b *testing.B) {
	for _, sz := range streamBenchSizes {
		b.Run(sz.name, func(b *testing.B) {
			prep := streamScene(b, sz.groups, sz.fan)
			b.ResetTimer()
			var ttft time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				s, err := prep.ExecStream(StreamOptions{})
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					_, ok, err := s.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
					if n == 0 {
						ttft += time.Since(start)
					}
					n++
				}
				if n != sz.groups*sz.fan {
					b.Fatalf("stream produced %d answers, want %d", n, sz.groups*sz.fan)
				}
			}
			b.ReportMetric(float64(ttft.Microseconds())/float64(b.N), "ttft_us")
		})
	}
}

// BenchmarkStreamingFirstPage serves one limit-100 page per iteration —
// the early-termination case a paging client exercises.
func BenchmarkStreamingFirstPage(b *testing.B) {
	for _, sz := range streamBenchSizes {
		b.Run(sz.name, func(b *testing.B) {
			prep := streamScene(b, sz.groups, sz.fan)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := prep.ExecLimit(100)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Tuples) != 100 {
					b.Fatalf("page size %d, want 100", len(res.Tuples))
				}
			}
		})
	}
}

// BenchmarkStreamingWorkload runs every effectively bounded query of the
// TFACC and TPCH workloads both ways, materializing vs stream-consume.
func BenchmarkStreamingWorkload(b *testing.B) {
	for _, mk := range []func() *datagen.Dataset{datagen.TFACC, datagen.TPCH} {
		ds := mk()
		b.Run(ds.Name, func(b *testing.B) {
			db, err := ds.Build(0.125)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := NewEngine(ds.Catalog, ds.Access, db, EngineOptions{})
			if err != nil {
				b.Fatal(err)
			}
			ws, err := querygen.Workload(ds, querygen.Seed)
			if err != nil {
				b.Fatal(err)
			}
			var preps []*Prepared
			for _, w := range ws {
				prep, err := eng.PrepareQuery(w.Query)
				if err != nil {
					continue // not effectively bounded
				}
				preps = append(preps, prep)
			}
			if len(preps) == 0 {
				b.Fatal("no effectively bounded workload queries")
			}
			b.Run("materialize", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, p := range preps {
						if _, err := p.Exec(); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			b.Run("stream", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, p := range preps {
						s, err := p.ExecStream(StreamOptions{})
						if err != nil {
							b.Fatal(err)
						}
						for {
							_, ok, err := s.Next()
							if err != nil {
								b.Fatal(err)
							}
							if !ok {
								break
							}
						}
					}
				}
			})
		})
	}
}

// streamBenchRow is one BENCH_streaming.json measurement.
type streamBenchRow struct {
	Mode       string `json:"mode"`
	ResultSize int    `json:"result_size"`
	Answers    int    `json:"answers"`
	TTFTNS     int64  `json:"ttft_ns"`
	TotalNS    int64  `json:"total_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// allocDuring reports total bytes allocated while fn runs (single
// goroutine, GC'd baseline).
func allocDuring(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestStreamingBenchEmit measures materializing vs streaming execution
// on the large fan-out scene and asserts the streaming contract the
// benchmarks exist to guard: a first page allocates ≥ 10× less than
// materializing the full answer, and the stream's first tuple arrives
// measurably before the materialized result would. With
// STREAMING_BENCH_JSON set, the measurements are written there
// (BENCH_streaming.json in CI) so the perf trajectory records.
func TestStreamingBenchEmit(t *testing.T) {
	const groups, fan = 3000, 30 // 90k answers
	prep := streamScene(t, groups, fan)
	size := groups * fan
	var rows []streamBenchRow

	// Materializing run: the whole answer exists at once.
	var matTotal time.Duration
	var matAnswers int
	matAlloc := allocDuring(func() {
		start := time.Now()
		res, err := prep.Exec()
		if err != nil {
			t.Fatal(err)
		}
		matTotal = time.Since(start)
		matAnswers = len(res.Tuples)
	})
	rows = append(rows, streamBenchRow{
		Mode: "materialize", ResultSize: size, Answers: matAnswers,
		TTFTNS: matTotal.Nanoseconds(), TotalNS: matTotal.Nanoseconds(), AllocBytes: matAlloc,
	})

	// Full streaming consumption: same answers, nothing held.
	var ttft, streamTotal time.Duration
	var streamed int
	streamAlloc := allocDuring(func() {
		start := time.Now()
		s, err := prep.ExecStream(StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, ok, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if streamed == 0 {
				ttft = time.Since(start)
			}
			streamed++
		}
		streamTotal = time.Since(start)
	})
	rows = append(rows, streamBenchRow{
		Mode: "stream", ResultSize: size, Answers: streamed,
		TTFTNS: ttft.Nanoseconds(), TotalNS: streamTotal.Nanoseconds(), AllocBytes: streamAlloc,
	})

	// First page with early termination: the serving path's unit of work.
	var pageTotal time.Duration
	var pageAnswers int
	pageAlloc := allocDuring(func() {
		start := time.Now()
		res, err := prep.ExecLimit(100)
		if err != nil {
			t.Fatal(err)
		}
		pageTotal = time.Since(start)
		pageAnswers = len(res.Tuples)
	})
	rows = append(rows, streamBenchRow{
		Mode: "stream-limit-100", ResultSize: size, Answers: pageAnswers,
		TTFTNS: pageTotal.Nanoseconds(), TotalNS: pageTotal.Nanoseconds(), AllocBytes: pageAlloc,
	})

	if streamed != matAnswers {
		t.Fatalf("stream produced %d answers, materialize %d", streamed, matAnswers)
	}
	if pageAnswers != 100 {
		t.Fatalf("first page has %d answers, want 100", pageAnswers)
	}
	if matAlloc < 10*pageAlloc {
		t.Errorf("first page allocated %d bytes vs %d materializing — less than the 10× streaming is for", pageAlloc, matAlloc)
	}
	if ttft*2 >= matTotal {
		t.Errorf("time-to-first-tuple %v is not measurably below materializing %v", ttft, matTotal)
	}
	t.Logf("|Q(D)| = %d: materialize %v / %d B; stream ttft %v, total %v / %d B; limit-100 page %v / %d B",
		size, matTotal, matAlloc, ttft, streamTotal, streamAlloc, pageTotal, pageAlloc)

	if path := os.Getenv("STREAMING_BENCH_JSON"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Rows []streamBenchRow `json:"rows"`
		}{rows}); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
