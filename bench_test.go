// Benchmarks regenerating every table and figure of the paper's Section 6
// (see DESIGN.md §3 for the experiment index). Each BenchmarkFig5* runs one
// panel of Figure 5 and reports the headline series as custom metrics:
//
//	evalDQ_ms_max    — evalDQ mean wall time at the largest x (flat in |D|)
//	baseline_ms_max  — baseline mean wall time at the largest finished x
//	DQ_tuples        — mean |D_Q| at the largest x (independent of |D|)
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// and add -v to also print the rendered panels. cmd/bqexp produces the
// same data as standalone tables/CSV.
package bcq

import (
	"bytes"
	"fmt"
	"testing"

	"bcq/internal/core"
	"bcq/internal/datagen"
	"bcq/internal/exec"
	"bcq/internal/experiments"
	"bcq/internal/plan"
	"bcq/internal/querygen"
)

// benchConfig balances fidelity (the paper's 2⁻⁵…1 scale sweep) against
// bench wall time.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scales = []float64{1.0 / 32, 1.0 / 8, 1.0 / 2, 1}
	cfg.FixedScale = 1.0 / 2
	cfg.Budget = 1_000_000
	return cfg
}

type panelFn func(*datagen.Dataset, experiments.Config) (experiments.Panel, error)

func benchPanel(b *testing.B, mk func() *datagen.Dataset, fn panelFn) {
	b.Helper()
	cfg := benchConfig()
	var panel experiments.Panel
	for i := 0; i < b.N; i++ {
		var err error
		panel, err = fn(mk(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(panel.Points) == 0 {
		b.Fatal("empty panel")
	}
	last := panel.Points[len(panel.Points)-1]
	b.ReportMetric(last.EvalMS, "evalDQ_ms_max")
	b.ReportMetric(last.DQ, "DQ_tuples")
	// The baseline's last finished point (it may DNF at the largest x).
	for i := len(panel.Points) - 1; i >= 0; i-- {
		if !panel.Points[i].DNF {
			b.ReportMetric(panel.Points[i].BaseMS, "baseline_ms_max")
			break
		}
	}
	var buf bytes.Buffer
	experiments.RenderPanel(&buf, panel)
	b.Log("\n" + buf.String())
}

// --- Figure 5, panels (a)–(l) ---

func BenchmarkFig5a_TFACC_VaryD(b *testing.B) { benchPanel(b, datagen.TFACC, experiments.Fig5VaryD) }
func BenchmarkFig5b_TFACC_VaryA(b *testing.B) { benchPanel(b, datagen.TFACC, experiments.Fig5VaryA) }
func BenchmarkFig5c_TFACC_VarySel(b *testing.B) {
	benchPanel(b, datagen.TFACC, experiments.Fig5VarySel)
}
func BenchmarkFig5d_TFACC_VaryProd(b *testing.B) {
	benchPanel(b, datagen.TFACC, experiments.Fig5VaryProd)
}
func BenchmarkFig5e_MOT_VaryD(b *testing.B) { benchPanel(b, datagen.MOT, experiments.Fig5VaryD) }
func BenchmarkFig5f_MOT_VaryA(b *testing.B) { benchPanel(b, datagen.MOT, experiments.Fig5VaryA) }
func BenchmarkFig5g_MOT_VarySel(b *testing.B) {
	benchPanel(b, datagen.MOT, experiments.Fig5VarySel)
}
func BenchmarkFig5h_MOT_VaryProd(b *testing.B) {
	benchPanel(b, datagen.MOT, experiments.Fig5VaryProd)
}
func BenchmarkFig5i_TPCH_VaryD(b *testing.B) { benchPanel(b, datagen.TPCH, experiments.Fig5VaryD) }
func BenchmarkFig5j_TPCH_VaryA(b *testing.B) { benchPanel(b, datagen.TPCH, experiments.Fig5VaryA) }
func BenchmarkFig5k_TPCH_VarySel(b *testing.B) {
	benchPanel(b, datagen.TPCH, experiments.Fig5VarySel)
}
func BenchmarkFig5l_TPCH_VaryProd(b *testing.B) {
	benchPanel(b, datagen.TPCH, experiments.Fig5VaryProd)
}

// --- Table 1: algorithm elapsed times ---

func benchTable1(b *testing.B, mk func() *datagen.Dataset) {
	b.Helper()
	cfg := benchConfig()
	var row experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.Table1(mk(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.BCheck.Microseconds()), "BCheck_µs_max")
	b.ReportMetric(float64(row.EBCheck.Microseconds()), "EBCheck_µs_max")
	b.ReportMetric(float64(row.FindDPh.Microseconds()), "findDPh_µs_max")
	b.ReportMetric(float64(row.QPlan.Microseconds()), "QPlan_µs_max")
}

func BenchmarkTable1_TFACC(b *testing.B) { benchTable1(b, datagen.TFACC) }
func BenchmarkTable1_MOT(b *testing.B)   { benchTable1(b, datagen.MOT) }
func BenchmarkTable1_TPCH(b *testing.B)  { benchTable1(b, datagen.TPCH) }

// --- Table 2: complexity scaling (PTIME checkers vs exponential exact) ---

func BenchmarkTable2_Scaling(b *testing.B) {
	var points []experiments.Table2Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Table2Scaling([]int{2, 4, 6, 8, 10}, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := points[len(points)-1]
	b.ReportMetric(last.CheckerNS, "EBCheck_ns_at_max")
	b.ReportMetric(last.ExactNS, "exactMDP_ns_at_max")
	var buf bytes.Buffer
	experiments.RenderTable2(&buf, points)
	b.Log("\n" + buf.String())
}

// --- Prepared-query engine: plan cache vs cold pipeline ---

// BenchmarkEngine_PreparedVsCold measures what the plan cache buys on the
// serving path: "cold" re-runs analyze→QPlan→evalDQ from scratch per
// request (the pre-engine pipeline), "prepare" goes through the engine's
// fingerprint + cache-hit path per request, and "exec" holds the Prepared
// and only executes. The spread between cold and exec is the per-request
// analysis cost the engine removes.
func BenchmarkEngine_PreparedVsCold(b *testing.B) {
	ds := datagen.TFACC()
	ws, err := querygen.Workload(ds, querygen.Seed)
	if err != nil {
		b.Fatal(err)
	}
	db := ds.MustBuild(1.0 / 8)
	eng, err := NewEngine(ds.Catalog, ds.Access, db, EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// The first effectively bounded workload query stands in for the hot
	// query of a service.
	var hot *Query
	for _, w := range ws {
		if _, err := eng.PrepareQuery(w.Query); err == nil {
			hot = w.Query
			break
		}
	}
	if hot == nil {
		b.Fatal("no effectively bounded workload query")
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			an, err := core.NewAnalysis(ds.Catalog, hot, ds.Access)
			if err != nil {
				b.Fatal(err)
			}
			p, err := plan.QPlan(an)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Run(p, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := eng.PrepareQuery(hot)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exec", func(b *testing.B) {
		p, err := eng.PrepareQuery(hot)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := p.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})
	st := eng.Stats()
	b.Logf("engine stats after benchmark: %+v (plans for the hot query: 1)", st)
}

// --- Parallel vs sequential bounded execution ---

// chainBench builds a three-way self-join whose candidate sets multiply
// through the fetch steps (1 → F → F² probes), so phase-1 index probing
// dominates and the executor's probe fan-out is visible. The answer and
// every statistic are identical at every parallelism level; only wall
// time changes.
func chainBench(b *testing.B) (*Plan, *Database) {
	b.Helper()
	const (
		fanout = 48    // distinct y per x (the constraint's N)
		domain = 40000 // x-value space
	)
	cat, acc, err := ParseDDL(`
		relation chain(x, y)
		constraint chain: (x) -> (y, 48)
	`)
	if err != nil {
		b.Fatal(err)
	}
	db := NewDatabase(cat)
	for x := int64(0); x < domain; x++ {
		for j := int64(0); j < fanout; j++ {
			y := (x*2654435761 + j*40503) % domain
			if err := db.Insert("chain", Tuple{Int(x), Int(y)}); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := db.BuildIndexes(acc); err != nil {
		b.Fatal(err)
	}
	q, err := ParseQuery(`
		select t3.y
		from chain as t1, chain as t2, chain as t3
		where t1.x = 7 and t1.y = t2.x and t2.y = t3.x
	`, cat)
	if err != nil {
		b.Fatal(err)
	}
	an, err := Analyze(cat, q, acc)
	if err != nil {
		b.Fatal(err)
	}
	p, err := an.Plan()
	if err != nil {
		b.Fatal(err)
	}
	return p, db
}

// BenchmarkExec_ParallelVsSequential runs one multi-atom bounded plan at
// increasing probe parallelism. Compare the ns/op across sub-benchmarks;
// tuples_fetched is reported to show the work is identical.
func BenchmarkExec_ParallelVsSequential(b *testing.B) {
	p, db := chainBench(b)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = ExecuteParallel(p, db, par)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.TuplesFetched), "tuples_fetched")
			b.ReportMetric(float64(len(res.Tuples)), "answers")
		})
	}
}

// --- Exp-1: effectively bounded census ---

func BenchmarkExp1_Census(b *testing.B) {
	cfg := benchConfig()
	total, eb := 0, 0
	for i := 0; i < b.N; i++ {
		total, eb = 0, 0
		for _, mk := range []func() *datagen.Dataset{datagen.TFACC, datagen.MOT, datagen.TPCH} {
			c, err := experiments.Census(mk(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			total += c.Total
			eb += c.EffectivelyBounded
		}
	}
	b.ReportMetric(float64(eb), "effectively_bounded")
	b.ReportMetric(float64(total), "queries")
	b.Logf("census: %d/%d effectively bounded (paper: 35/45)", eb, total)
}
