// Benchmarks regenerating every table and figure of the paper's Section 6
// (see DESIGN.md §3 for the experiment index). Each BenchmarkFig5* runs one
// panel of Figure 5 and reports the headline series as custom metrics:
//
//	evalDQ_ms_max    — evalDQ mean wall time at the largest x (flat in |D|)
//	baseline_ms_max  — baseline mean wall time at the largest finished x
//	DQ_tuples        — mean |D_Q| at the largest x (independent of |D|)
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// and add -v to also print the rendered panels. cmd/bqexp produces the
// same data as standalone tables/CSV.
package bcq

import (
	"bytes"
	"testing"

	"bcq/internal/datagen"
	"bcq/internal/experiments"
)

// benchConfig balances fidelity (the paper's 2⁻⁵…1 scale sweep) against
// bench wall time.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scales = []float64{1.0 / 32, 1.0 / 8, 1.0 / 2, 1}
	cfg.FixedScale = 1.0 / 2
	cfg.Budget = 1_000_000
	return cfg
}

type panelFn func(*datagen.Dataset, experiments.Config) (experiments.Panel, error)

func benchPanel(b *testing.B, mk func() *datagen.Dataset, fn panelFn) {
	b.Helper()
	cfg := benchConfig()
	var panel experiments.Panel
	for i := 0; i < b.N; i++ {
		var err error
		panel, err = fn(mk(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(panel.Points) == 0 {
		b.Fatal("empty panel")
	}
	last := panel.Points[len(panel.Points)-1]
	b.ReportMetric(last.EvalMS, "evalDQ_ms_max")
	b.ReportMetric(last.DQ, "DQ_tuples")
	// The baseline's last finished point (it may DNF at the largest x).
	for i := len(panel.Points) - 1; i >= 0; i-- {
		if !panel.Points[i].DNF {
			b.ReportMetric(panel.Points[i].BaseMS, "baseline_ms_max")
			break
		}
	}
	var buf bytes.Buffer
	experiments.RenderPanel(&buf, panel)
	b.Log("\n" + buf.String())
}

// --- Figure 5, panels (a)–(l) ---

func BenchmarkFig5a_TFACC_VaryD(b *testing.B) { benchPanel(b, datagen.TFACC, experiments.Fig5VaryD) }
func BenchmarkFig5b_TFACC_VaryA(b *testing.B) { benchPanel(b, datagen.TFACC, experiments.Fig5VaryA) }
func BenchmarkFig5c_TFACC_VarySel(b *testing.B) {
	benchPanel(b, datagen.TFACC, experiments.Fig5VarySel)
}
func BenchmarkFig5d_TFACC_VaryProd(b *testing.B) {
	benchPanel(b, datagen.TFACC, experiments.Fig5VaryProd)
}
func BenchmarkFig5e_MOT_VaryD(b *testing.B) { benchPanel(b, datagen.MOT, experiments.Fig5VaryD) }
func BenchmarkFig5f_MOT_VaryA(b *testing.B) { benchPanel(b, datagen.MOT, experiments.Fig5VaryA) }
func BenchmarkFig5g_MOT_VarySel(b *testing.B) {
	benchPanel(b, datagen.MOT, experiments.Fig5VarySel)
}
func BenchmarkFig5h_MOT_VaryProd(b *testing.B) {
	benchPanel(b, datagen.MOT, experiments.Fig5VaryProd)
}
func BenchmarkFig5i_TPCH_VaryD(b *testing.B) { benchPanel(b, datagen.TPCH, experiments.Fig5VaryD) }
func BenchmarkFig5j_TPCH_VaryA(b *testing.B) { benchPanel(b, datagen.TPCH, experiments.Fig5VaryA) }
func BenchmarkFig5k_TPCH_VarySel(b *testing.B) {
	benchPanel(b, datagen.TPCH, experiments.Fig5VarySel)
}
func BenchmarkFig5l_TPCH_VaryProd(b *testing.B) {
	benchPanel(b, datagen.TPCH, experiments.Fig5VaryProd)
}

// --- Table 1: algorithm elapsed times ---

func benchTable1(b *testing.B, mk func() *datagen.Dataset) {
	b.Helper()
	cfg := benchConfig()
	var row experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.Table1(mk(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.BCheck.Microseconds()), "BCheck_µs_max")
	b.ReportMetric(float64(row.EBCheck.Microseconds()), "EBCheck_µs_max")
	b.ReportMetric(float64(row.FindDPh.Microseconds()), "findDPh_µs_max")
	b.ReportMetric(float64(row.QPlan.Microseconds()), "QPlan_µs_max")
}

func BenchmarkTable1_TFACC(b *testing.B) { benchTable1(b, datagen.TFACC) }
func BenchmarkTable1_MOT(b *testing.B)   { benchTable1(b, datagen.MOT) }
func BenchmarkTable1_TPCH(b *testing.B)  { benchTable1(b, datagen.TPCH) }

// --- Table 2: complexity scaling (PTIME checkers vs exponential exact) ---

func BenchmarkTable2_Scaling(b *testing.B) {
	var points []experiments.Table2Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Table2Scaling([]int{2, 4, 6, 8, 10}, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := points[len(points)-1]
	b.ReportMetric(last.CheckerNS, "EBCheck_ns_at_max")
	b.ReportMetric(last.ExactNS, "exactMDP_ns_at_max")
	var buf bytes.Buffer
	experiments.RenderTable2(&buf, points)
	b.Log("\n" + buf.String())
}

// --- Exp-1: effectively bounded census ---

func BenchmarkExp1_Census(b *testing.B) {
	cfg := benchConfig()
	total, eb := 0, 0
	for i := 0; i < b.N; i++ {
		total, eb = 0, 0
		for _, mk := range []func() *datagen.Dataset{datagen.TFACC, datagen.MOT, datagen.TPCH} {
			c, err := experiments.Census(mk(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			total += c.Total
			eb += c.EffectivelyBounded
		}
	}
	b.ReportMetric(float64(eb), "effectively_bounded")
	b.ReportMetric(float64(total), "queries")
	b.Logf("census: %d/%d effectively bounded (paper: 35/45)", eb, total)
}
