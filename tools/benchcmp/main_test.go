package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func flat(pairs map[string]float64) map[string]float64 { return pairs }

// TestCompareRegression: a time path 30% and 5ms worse regresses; the
// same relative slip under the absolute floor does not.
func TestCompareRegression(t *testing.T) {
	base := flat(map[string]float64{
		"rows[0].total_ns": 10_000_000, // 10ms
		"rows[0].ttft_ns":  60_000,     // 60µs — above floor, small value
		"answers":          90_000,     // no suffix: informational
	})
	cur := flat(map[string]float64{
		"rows[0].total_ns": 13_500_000, // +35%, +3.5ms > 50µs floor
		"rows[0].ttft_ns":  75_000,     // +25% exactly — not > threshold
		"answers":          1,          // ignored even though it collapsed
	})
	r := compare(base, cur, 0.25)
	if len(r.Regressions) != 1 || r.Regressions[0].Path != "rows[0].total_ns" {
		t.Fatalf("regressions = %+v, want exactly rows[0].total_ns", r.Regressions)
	}
	if r.Checked != 2 {
		t.Errorf("checked %d paths, want 2 (answers carries no suffix)", r.Checked)
	}
}

// TestCompareNoiseFloor: a huge relative slip on a tiny measurement
// stays under the absolute floor and passes.
func TestCompareNoiseFloor(t *testing.T) {
	base := flat(map[string]float64{"sample_ns": 1_000, "overhead_pct": 0.1})
	cur := flat(map[string]float64{"sample_ns": 30_000, "overhead_pct": 4.9})
	// +2900% but only +29µs (< 50µs floor); +4.8 points (< 5 point floor).
	if r := compare(base, cur, 0.25); len(r.Regressions) != 0 {
		t.Fatalf("noise flagged as regression: %+v", r.Regressions)
	}
	// Past both floor and threshold it fails.
	cur["sample_ns"] = 1_000_000
	if r := compare(base, cur, 0.25); len(r.Regressions) != 1 {
		t.Fatalf("real regression not flagged")
	}
}

// TestCompareImprovementAndDrift: improvements and path drift are
// reported, not fatal.
func TestCompareImprovementAndDrift(t *testing.T) {
	base := flat(map[string]float64{"a_ms": 100, "gone_ms": 5})
	cur := flat(map[string]float64{"a_ms": 10, "new_ms": 7})
	r := compare(base, cur, 0.25)
	if len(r.Regressions) != 0 {
		t.Fatalf("regressions = %+v", r.Regressions)
	}
	if len(r.Improved) != 1 || r.Improved[0] != "a_ms" {
		t.Errorf("improved = %v, want [a_ms]", r.Improved)
	}
	if len(r.Missing) != 1 || r.Missing[0] != "gone_ms" {
		t.Errorf("missing = %v, want [gone_ms]", r.Missing)
	}
	if len(r.Added) != 1 || r.Added[0] != "new_ms" {
		t.Errorf("added = %v, want [new_ms]", r.Added)
	}
	out := r.String()
	for _, want := range []string{"improved   a_ms", "gone_ms missing", "new path new_ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestLoadFlat: nested objects and arrays flatten to dotted paths.
func TestLoadFlat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(path, []byte(`{"rows": [{"total_ns": 5, "mode": "x"}], "top_pct": 1.5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	if m["rows[0].total_ns"] != 5 || m["top_pct"] != 1.5 {
		t.Fatalf("flattened map = %v", m)
	}
	if _, ok := m["rows[0].mode"]; ok {
		t.Error("non-numeric leaf flattened")
	}
	if _, err := loadFlat(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}
