// Command benchcmp compares a benchmark-emit JSON file (BENCH_obs.json,
// BENCH_streaming.json, BENCH_timeseries.json) against a committed
// baseline and fails when a lower-is-better measurement regressed past
// the threshold. CI runs it after the bench-emit tests so a performance
// regression fails the build like a broken test.
//
// Usage:
//
//	benchcmp -baseline bench/BENCH_obs.json -current BENCH_obs.json
//	benchcmp -baseline old.json -current new.json -threshold 0.5
//
// Both files are flattened to dotted numeric paths (arrays index as
// rows[0], rows[1], …). A path counts as lower-is-better by suffix —
// _ns/_us/_ms (time), _bytes (allocation), _pct (overhead) — everything
// else is informational. A regression must clear BOTH the relative
// threshold (default +25%) and the suffix's absolute floor, so noise on
// near-zero measurements (a 30ns alloc path, a 0.1% overhead) never
// fails the build. Paths present only in one file are reported but not
// fatal: emit formats may grow fields.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	baseline := flag.String("baseline", "", "committed baseline JSON")
	current := flag.String("current", "", "freshly emitted JSON")
	threshold := flag.Float64("threshold", 0.25, "relative regression that fails (0.25 = +25%)")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := loadFlat(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cur, err := loadFlat(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	report := compare(base, cur, *threshold)
	fmt.Print(report.String())
	if len(report.Regressions) > 0 {
		os.Exit(1)
	}
}

// floors maps a lower-is-better suffix to the absolute increase a
// regression must also exceed. Units differ per suffix, so each gets
// its own noise floor.
var floors = []struct {
	suffix string
	floor  float64
}{
	{"_ns", 50_000},  // 50µs of wall time
	{"_us", 50},      // same floor, microsecond-denominated
	{"_ms", 1},       // 1ms
	{"_bytes", 4096}, // one page of allocation
	{"_pct", 5},      // five points — overhead percentages swing with scheduler noise
}

// lowerIsBetter reports whether the path's last segment carries a
// regression-checked suffix, and its absolute floor.
func lowerIsBetter(path string) (float64, bool) {
	last := path
	if i := strings.LastIndex(path, "."); i >= 0 {
		last = path[i+1:]
	}
	for _, f := range floors {
		if strings.HasSuffix(last, f.suffix) {
			return f.floor, true
		}
	}
	return 0, false
}

// regression is one measurement that got worse past threshold + floor.
type regression struct {
	Path     string
	Base     float64
	Current  float64
	Relative float64 // (current-base)/base, +0.30 = 30% slower
}

// reportData is everything compare found, renderable and testable.
type reportData struct {
	Checked     int
	Regressions []regression
	Improved    []string
	Missing     []string // in baseline, absent in current
	Added       []string // in current, absent in baseline
}

func (r reportData) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchcmp: %d lower-is-better measurements checked\n", r.Checked)
	for _, reg := range r.Regressions {
		fmt.Fprintf(&b, "  REGRESSION %s: %.0f -> %.0f (%+.1f%%)\n",
			reg.Path, reg.Base, reg.Current, reg.Relative*100)
	}
	for _, p := range r.Improved {
		fmt.Fprintf(&b, "  improved   %s\n", p)
	}
	for _, p := range r.Missing {
		fmt.Fprintf(&b, "  note: baseline path %s missing from current emit\n", p)
	}
	for _, p := range r.Added {
		fmt.Fprintf(&b, "  note: new path %s not in baseline (commit a refreshed baseline to track it)\n", p)
	}
	if len(r.Regressions) == 0 {
		b.WriteString("  ok: no measurement regressed past threshold\n")
	}
	return b.String()
}

// compare walks the baseline's lower-is-better paths and flags those
// whose current value exceeds the relative threshold AND the absolute
// floor.
func compare(base, cur map[string]float64, threshold float64) reportData {
	var r reportData
	for _, path := range sortedKeys(base) {
		floor, checked := lowerIsBetter(path)
		if !checked {
			continue
		}
		cv, ok := cur[path]
		if !ok {
			r.Missing = append(r.Missing, path)
			continue
		}
		r.Checked++
		bv := base[path]
		diff := cv - bv
		if bv > 0 && diff > floor && diff/bv > threshold {
			r.Regressions = append(r.Regressions, regression{
				Path: path, Base: bv, Current: cv, Relative: diff / bv,
			})
		} else if bv > 0 && -diff > floor && -diff/bv > threshold {
			r.Improved = append(r.Improved, path)
		}
	}
	for _, path := range sortedKeys(cur) {
		if _, checked := lowerIsBetter(path); !checked {
			continue
		}
		if _, ok := base[path]; !ok {
			r.Added = append(r.Added, path)
		}
	}
	return r
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// loadFlat reads a JSON file and flattens every number to a dotted
// path.
func loadFlat(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	flatten("", v, out)
	return out, nil
}

func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, child, out)
		}
	case []any:
		for i, child := range x {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), child, out)
		}
	case float64:
		out[prefix] = x
	}
}
