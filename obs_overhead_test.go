// Overhead guardrail for the observability layer: the same workload runs
// on two engines over the same data — one bare, one with a full metrics
// registry, traced prepares and slow-log-armed execution paths disabled
// only by nil checks — and the enabled median must stay within 5% of the
// bare one. That budget is the package contract internal/obs documents;
// this test is the thing that keeps it honest.
//
//	go test -run TestObsOverhead -v
//	go test -bench BenchmarkObsOverhead -benchmem
//
// With OBS_BENCH_JSON set, the measurements are written there
// (BENCH_obs.json in CI) so the overhead trajectory records.
package bcq

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"bcq/internal/obs"
)

// obsScene builds the fan-out scene on an engine with or without a
// metrics registry. The query fans 200 groups × 20 rows, so one
// execution issues hundreds of probes — enough work that per-probe
// instrumentation cost would show, not vanish in noise.
func obsScene(tb testing.TB, reg *obs.Registry) *Prepared {
	tb.Helper()
	cat, acc, err := ParseDDL(streamBenchDDL)
	if err != nil {
		tb.Fatal(err)
	}
	db := NewDatabase(cat)
	for s := 0; s < 200; s++ {
		for d := 0; d < 20; d++ {
			if err := db.Insert("edge", Tuple{Int(int64(s)), Int(int64(d))}); err != nil {
				tb.Fatal(err)
			}
		}
	}
	eng, err := NewEngine(cat, acc, db, EngineOptions{Metrics: reg})
	if err != nil {
		tb.Fatal(err)
	}
	q, err := ParseQuery(streamBenchQuery, cat)
	if err != nil {
		tb.Fatal(err)
	}
	prep, err := eng.PrepareQuery(q)
	if err != nil {
		tb.Fatal(err)
	}
	return prep
}

// medianExecNS times reps executions and returns the median wall time of
// one execution in nanoseconds.
func medianExecNS(tb testing.TB, prep *Prepared, reps int) float64 {
	tb.Helper()
	times := make([]float64, reps)
	for i := range times {
		start := time.Now()
		res, err := prep.Exec()
		if err != nil {
			tb.Fatal(err)
		}
		if len(res.Tuples) != 200*20 {
			tb.Fatalf("answer size %d, want %d", len(res.Tuples), 200*20)
		}
		times[i] = float64(time.Since(start).Nanoseconds())
	}
	sort.Float64s(times)
	return times[len(times)/2]
}

// TestObsOverhead is the guardrail: with a registry registered on the
// engine (every executor counter, histogram and shard-probe handle
// live), the median execution must stay within 5% of the uninstrumented
// engine. Medians over interleaved sample rounds absorb scheduler noise;
// a second, larger round confirms before failing.
func TestObsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guardrail; skipped in -short")
	}
	bare := obsScene(t, nil)
	reg := obs.NewRegistry()
	instr := obsScene(t, reg)
	// The retention tier rides along: a sampler ticking far faster than
	// production (10ms vs 5s) collects the registry throughout the
	// measurement, so the 5% budget covers metrics AND time-series
	// retention together.
	ts := obs.NewTimeSeries(reg, obs.TimeSeriesOptions{Interval: 10 * time.Millisecond, Window: 64})
	ts.Start()
	defer ts.Stop()

	measure := func(reps int) (bareNS, instrNS float64) {
		const rounds = 5
		bs := make([]float64, 0, rounds)
		is := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ { // interleave so drift hits both alike
			bs = append(bs, medianExecNS(t, bare, reps))
			is = append(is, medianExecNS(t, instr, reps))
		}
		sort.Float64s(bs)
		sort.Float64s(is)
		return bs[rounds/2], is[rounds/2]
	}

	bareNS, instrNS := measure(20)
	overhead := instrNS/bareNS - 1
	if overhead > 0.05 {
		// One confirmation round with more samples before declaring a
		// regression — CI machines are noisy at microsecond scales.
		bareNS, instrNS = measure(60)
		overhead = instrNS/bareNS - 1
	}
	t.Logf("bare %.0fns, instrumented %.0fns: overhead %+.2f%%", bareNS, instrNS, overhead*100)
	if overhead > 0.05 {
		t.Errorf("instrumented execution is %.2f%% slower than bare (budget 5%%)", overhead*100)
	}

	if path := os.Getenv("OBS_BENCH_JSON"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			BareNS      float64 `json:"bare_ns"`
			InstrNS     float64 `json:"instrumented_ns"`
			OverheadPct float64 `json:"overhead_pct"`
			BudgetPct   float64 `json:"budget_pct"`
		}{bareNS, instrNS, overhead * 100, 5}); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// BenchmarkObsOverhead is the same comparison as a benchmark pair for
// interactive use: -bench BenchmarkObsOverhead prints both modes side by
// side.
func BenchmarkObsOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		reg  *obs.Registry
	}{
		{"disabled", nil},
		{"enabled", obs.NewRegistry()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			prep := obsScene(b, mode.reg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prep.Exec(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsInstruments pins the per-call cost of the primitives the
// hot paths lean on: counter increments, histogram observations and the
// disabled-mode nil-check.
func BenchmarkObsInstruments(b *testing.B) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("bench_total", "")
	hist := reg.Histogram("bench_seconds", "", obs.LatencyBuckets)
	var nilCtr *obs.Counter
	var nilHist *obs.Histogram
	b.Run("counter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctr.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hist.Observe(0.0042)
		}
	})
	b.Run("counter-nil", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nilCtr.Inc()
		}
	})
	b.Run("histogram-nil", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nilHist.Observe(0.0042)
		}
	})
}
